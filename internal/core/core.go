// Package core is FIRestarter's recovery runtime: the execution-time half
// of the system that the compile-time passes in package transform
// instrument programs for.
//
// It implements:
//
//   - Crash transactions (§IV): at every gate a checkpoint is taken; the
//     region up to the next boundary library call runs inside a hardware
//     (package htm) or software (package stm) memory transaction.
//   - Dynamic transaction adaptivity (§IV-C): each gate monitors its HTM
//     abort rate and latches to STM permanently when the rate exceeds the
//     configured threshold, checked every SampleSize aborts.
//   - Crash recovery (§V): a fail-stop trap inside a transaction rolls the
//     transaction back and re-executes (transient faults). A repeated
//     crash is treated as persistent: the runtime runs the gate library
//     call's compensation action, injects the call's documented error
//     return, and resumes — diverting execution into the application's own
//     error-handling code.
//   - The paper's evaluation baselines: HTM-only (fall back to unprotected
//     execution on abort — no recovery guarantee) and STM-only (every
//     transaction software-checkpointed).
//
// Faithful to the paper's policy dynamics, a crash inside a *hardware*
// transaction is indistinguishable from a resource abort at abort time: the
// runtime first re-executes the region under STM "to determine whether HTM
// aborted due to resource constraints, or due to a real crash" (§IV-C);
// only a crash under STM enters the recovery path.
package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/firestarter-go/firestarter/internal/analysis"
	"github.com/firestarter-go/firestarter/internal/htm"
	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/ir"
	"github.com/firestarter-go/firestarter/internal/libmodel"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/obsv"
	"github.com/firestarter-go/firestarter/internal/stm"
	"github.com/firestarter-go/firestarter/internal/transform"
)

// Mode selects the protection scheme.
type Mode int

// Protection modes.
const (
	// ModeHybrid is full FIRestarter: HTM first, adaptive STM fallback.
	ModeHybrid Mode = iota + 1
	// ModeHTMOnly tries HTM and falls back to *unprotected* execution on
	// abort (the paper's performance baseline; no recovery guarantees).
	ModeHTMOnly
	// ModeSTMOnly checkpoints every transaction in software (the
	// paper's full-protection, high-overhead baseline).
	ModeSTMOnly
	// ModeRewind checkpoints every transaction with the rewind-and-discard
	// strategy: registers snapshot only, per-request arena memory discarded
	// in O(1) on rollback (the heap-domain ablation baseline). Implies
	// EnableDomains.
	ModeRewind
)

// String returns the mode name used in benchmark output.
func (m Mode) String() string {
	switch m {
	case ModeHybrid:
		return "FIRestarter"
	case ModeHTMOnly:
		return "HTM-only"
	case ModeSTMOnly:
		return "STM-only"
	case ModeRewind:
		return "Rewind"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Cycle-cost constants of the recovery machinery (see the cost model note
// in package interp).
const (
	costHTMBegin     = 10
	costHTMCommit    = 10
	costHTMAbort     = 150
	costSTMBegin     = 6
	costSTMCommit    = 2
	costSTMUndoEntry = 2
	costStmStore     = 4
	costCompensation = 100
	costSignal       = 2000 // signal delivery + handler entry/exit
	costShed         = 3000 // connection teardown + longjmp to the quiesce point
	costRegSavePer   = 1    // per register saved by the STM setjmp analog

	// Rewind-and-discard strategy costs: entry switches the protection
	// domain and snapshots registers only (no undo log, no HTM begin);
	// commit is a register drop; discard unmaps/rezeros the arena tail in
	// O(1) — the constant below is the whole rollback, independent of how
	// many stores the transaction made.
	costDomainBegin   = 8
	costDomainCommit  = 2
	costDomainDiscard = 30
)

// Config parameterizes the runtime.
type Config struct {
	Mode Mode

	// Threshold is the HTM abort-rate bound θ above which a gate latches
	// to STM (paper default 1%).
	Threshold float64

	// SampleSize S: the threshold is checked every S-th HTM abort of a
	// gate (paper's best: 4; Fig. 3 uses 128).
	SampleSize int64

	// RetryTransient is the number of rollback-and-re-execute attempts
	// (under STM) before a crash is declared persistent and a fault is
	// injected.
	RetryTransient int

	// StickyDivert keeps a gate permanently diverted after an injection
	// (gracefully disabling the crashing path) instead of re-arming
	// after the transaction commits.
	StickyDivert bool

	// HTM parameterizes the hardware model (cache geometry, interrupt
	// process, seed).
	HTM htm.Config

	// TraceLimit caps the recovery trace / span log (0 means the default,
	// obsv.DefaultSpanLimit). Past the cap a terminal "truncated" marker
	// is recorded and further events only increment the dropped counter.
	TraceLimit int

	// MaxSheds bounds the request-shedding rung: once the runtime has
	// shed this many requests it stops absorbing otherwise-fatal crashes
	// and lets the process die (escalating to the supervisor rung). The
	// bound exists because a fault that fires before the server touches a
	// new connection sheds nothing observable and would otherwise loop
	// forever. 0 means the default (32); shedding is inert anyway until
	// ArmQuiesce registers a quiesce point.
	MaxSheds int

	// EnableDomains switches on the rewind-and-discard checkpoint
	// strategy as a third option beside HTM and STM: per-request arenas
	// are carved from domain-tagged memory, the §IV-C policy may latch a
	// gate to domains, and cross-domain accesses trap as a new fail-stop
	// crash cause. Off by default — the domains-off fast path is
	// byte-identical to a build without this feature. ModeRewind implies
	// it. Single-threaded runs only (the scheduler tier excludes it).
	EnableDomains bool

	// DomainUndoMin is the per-commit mean undo-log volume (entries per
	// STM commit, sampled every SampleSize commits) above which an
	// STM-latched gate latches onward to the rewind strategy — the point
	// where O(1) discard beats per-store undo logging. 0 means the
	// default (24).
	DomainUndoMin int64

	// DomainBackoffMax bounds rewind-strategy back-off: after this many
	// domain transactions that overflowed their arena into the heap
	// (escaping O(1) discard), the gate re-latches to STM and the undo
	// threshold doubles. 0 means the default (4).
	DomainBackoffMax int
}

// withDefaults fills zero values with the paper's defaults.
func (c Config) withDefaults() Config {
	if c.Mode == 0 {
		c.Mode = ModeHybrid
	}
	if c.Threshold == 0 {
		c.Threshold = 0.01
	}
	if c.SampleSize == 0 {
		c.SampleSize = 4
	}
	if c.RetryTransient == 0 {
		c.RetryTransient = 1
	}
	if c.MaxSheds == 0 {
		c.MaxSheds = 32
	}
	if c.Mode == ModeRewind {
		c.EnableDomains = true
	}
	if c.DomainUndoMin == 0 {
		c.DomainUndoMin = 24
	}
	if c.DomainBackoffMax == 0 {
		c.DomainBackoffMax = 4
	}
	return c
}

// gateState is the per-gate adaptive policy and recovery state.
type gateState struct {
	execs     int64
	htmAborts int64

	stmLatched bool // permanent STM (policy decision)
	oneShotSTM bool // next execution in STM (post-abort re-execution)
	oneShotRaw bool // next execution unprotected (ModeHTMOnly fallback)
	oneShotDom bool // next execution under the rewind strategy (domain retry)

	// Rewind-strategy policy state (§IV-C extended to three options).
	stmTxs     int64 // STM commits since the gate latched to STM
	stmUndo    int64 // undo-log entries across those commits
	capAborts  int64 // HTM capacity aborts (rewind skips the STM detour)
	domLatched bool  // permanently on the rewind strategy
	domBackoff int   // domain transactions that overflowed into the heap
	undoMin    int64 // per-gate undo-volume threshold (doubles on back-off)

	crashes       int  // consecutive STM crashes in the current episode
	injectPending bool // inject at next gate execution
	injected      bool // injected in the current episode
	sticky        bool // permanently diverted (StickyDivert)
}

// callRecord captures one executed boundary call for compensation.
type callRecord struct {
	call libmodel.Call
	aux  any
}

type deferredCall struct {
	name string
	args []int64
}

// txState is the live transaction.
type txState struct {
	site       int
	variant    int64 // ir.TxHTM, ir.TxSTM, or 0 for unprotected
	snap       *interp.Snapshot
	htmTx      *htm.Tx
	stdoutMark int
	startSteps int64
	deferred   []deferredCall
	comps      []func()

	// Rewind-and-discard strategy: the IR only knows the HTM and STM
	// variants, so a domain transaction executes the HTM-shaped code path
	// (variant ir.TxHTM, no per-store instrumentation) with htmTx nil —
	// routeStore falls through to raw stores — and dom marks it for the
	// runtime. arenaMark is the O(1) checkpoint: the live arena's bump
	// offset at entry (-1 when no arena was live). fallbackMark snapshots
	// the arena manager's heap-fallback counter for the back-off policy.
	dom          bool
	arenaMark    int64
	fallbackMark int64
}

// Stats aggregates runtime behaviour for the evaluation harness.
type Stats struct {
	GateExecs    int64
	HTMBegins    int64
	HTMCommits   int64
	STMBegins    int64
	STMCommits   int64
	Unprotected  int64 // gate executions that ran unprotected (HTM-only fallback)
	HTMAborts    int64 // capacity + interrupt + crash-triggered explicit aborts
	Crashes      int64 // fail-stop traps inside transactions (counted under STM)
	Retries      int64 // transient re-executions
	Injections   int64 // persistent faults bypassed by injection
	Unrecovered  int64 // crashes the runtime could not recover
	DeferredRuns int64

	// Rewind-and-discard strategy accounting. DomainSwitches counts
	// current-domain register switches (a request's first arena
	// allocation); DomainRetires counts arenas discarded at request end;
	// DomainDiscards counts crash rollbacks that rewound an arena in
	// O(1); DomainViolations counts cross-domain accesses trapping as a
	// fail-stop crash cause; DomainLatches counts gates the §IV-C policy
	// latched to the rewind strategy.
	DomainBegins     int64
	DomainCommits    int64
	DomainSwitches   int64
	DomainRetires    int64
	DomainDiscards   int64
	DomainViolations int64
	DomainLatches    int64

	// Sheds counts requests dropped by the shedding rung: otherwise-fatal
	// crashes absorbed by resetting the offending connection and resuming
	// at the quiesce point. ShedConnsLost counts the sheds that actually
	// closed a live connection (a shed with no connection in hand resets
	// nothing but still restores the quiesce frame).
	Sheds         int64
	ShedConnsLost int64

	// Request-trace accounting: ReqStarts counts traced requests whose
	// first bytes the server consumed; ReqsDone / ReqsLost count terminal
	// outcomes the workload driver reported back (validated-or-rejected
	// response vs never-completing request).
	ReqStarts int64
	ReqsDone  int64
	ReqsLost  int64

	// LatencyCycles holds one sample per successful recovery event: the
	// cost-model cycles from trap to resumed execution (Fig. 5).
	LatencyCycles []int64

	// TxSteps holds, per committed transaction, the instructions retired
	// inside it — the size of the recovery window (bounded buffer).
	TxSteps []int64

	// TxWriteLines holds, per committed transaction, its write-set size:
	// dirty cache lines for HTM commits, undo-log entries for STM.
	TxWriteLines []int64

	// Executed site sets by role (Table III).
	GateSites  map[int]bool
	EmbedSites map[int]bool
	BreakSites map[int]bool
}

// HTMAbortRate returns aborts per HTM transaction begin.
func (s Stats) HTMAbortRate() float64 {
	if s.HTMBegins == 0 {
		return 0
	}
	return float64(s.HTMAborts) / float64(s.HTMBegins)
}

// Runtime implements interp.Runtime with full crash recovery.
type Runtime struct {
	cfg   Config
	model *libmodel.Model
	sites map[int]*analysis.Site
	gates map[int]*analysis.Site

	os   *libsim.OS
	m    *interp.Machine
	tsx  *htm.TSX
	undo *stm.Log

	// domain/tid connect this runtime's transactions to the other
	// threads' when the program runs under the scheduler; nil/0 for the
	// single-threaded case. waitingLock marks a TxBegin blocked on the
	// STM commit lock (the scheduler uses it to classify the block).
	domain      *htm.Domain
	tid         int
	waitingLock bool

	gs         []gateState
	cur        *txState
	curVariant int64
	pending    struct {
		site    int
		variant int64
		raw     bool
		dom     bool
		snap    *interp.Snapshot
	}
	lastCall map[int]*callRecord

	// quiesce is the boot-time snapshot of the app's request-handling
	// frame (its accept/event loop, blocked in epoll_wait), registered by
	// ArmQuiesce. While set, crashes the rest of the ladder cannot absorb
	// are shed — the offending connection is reset and execution resumes
	// here — instead of killing the process.
	quiesce *interp.Snapshot

	stats   Stats
	tracing bool
	spanAll bool
	spans   obsv.SpanLog

	// touched marks the trace IDs of requests the recovery machinery
	// acted on (abort, crash, retry, inject, latch, shed) — the driver's
	// clean-vs-recovery latency split reads it back at request completion.
	// Lazily allocated; nil until the first recovery event under tracing.
	touched map[int64]bool

	// Periodic checkpoint ring (see checkpoint.go). ckptEvery == 0 (the
	// default) disables capture entirely.
	ckptEvery int64
	ckptNext  int64
	ckptRing  []Checkpoint
	ckptCap   int
	ckptHead  int
}

var _ interp.Runtime = (*Runtime)(nil)

// New builds a runtime for a transformed program. Call Attach after
// creating the machine.
func New(tr *transform.Result, os *libsim.OS, cfg Config) *Runtime {
	cfg = cfg.withDefaults()
	rt := &Runtime{
		cfg:      cfg,
		model:    tr.Model,
		sites:    tr.Analysis.ByID,
		gates:    tr.Gates,
		os:       os,
		tsx:      htm.New(cfg.HTM),
		undo:     stm.New(os.Space),
		gs:       make([]gateState, tr.Prog.NumSites+1),
		lastCall: make(map[int]*callRecord),
	}
	rt.stats.GateSites = map[int]bool{}
	rt.stats.EmbedSites = map[int]bool{}
	rt.stats.BreakSites = map[int]bool{}
	rt.spans.Limit = cfg.TraceLimit
	if cfg.EnableDomains {
		// Per-request arenas over protection domains: the libsim arena
		// manager owns the memory half; these hooks thread its lifecycle
		// into the runtime's stats and span log.
		os.EnableArenas()
		os.SetArenaHooks(
			func(dom int32) {
				rt.stats.DomainSwitches++
				rt.emitSpan(obsv.SpanDomainSwitch, 0, "", "", fmt.Sprintf("dom=%d", dom))
			},
			func(dom int32) { rt.stats.DomainRetires++ },
		)
	}
	// Route library-internal writes to application memory through the
	// active transaction.
	os.SetStore(func(addr, val int64, width int) error {
		return rt.routeStore(addr, val, width)
	})
	os.SetTraceHook(rt.traceStart)
	return rt
}

// Attach binds the machine (created with this runtime) to the runtime.
func (rt *Runtime) Attach(m *interp.Machine) { rt.m = m }

// SetDomain joins this runtime to a shared HTM conflict domain as thread
// tid. Under the scheduler every thread gets its own Runtime (and TSX/undo
// log); the domain is what connects their transactions. Call before the
// first transaction.
func (rt *Runtime) SetDomain(d *htm.Domain, tid int) {
	rt.domain = d
	rt.tid = tid
	rt.tsx.AttachDomain(d, tid)
}

// StoreFunc exposes the transaction-routing store so the scheduler can
// re-point the shared OS at the running thread's runtime on every context
// switch (libsim.OS holds a single store hook).
func (rt *Runtime) StoreFunc() libsim.StoreFunc { return rt.routeStore }

// WaitingCommitLock reports whether the last blocked call was a TxBegin
// stalled on the STM commit lock (as opposed to blocked I/O); the
// scheduler wakes such threads as soon as another thread may have released
// the lock.
func (rt *Runtime) WaitingCommitLock() bool { return rt.waitingLock }

// OnResume delivers a conflict abort doomed into this thread's live
// hardware transaction while it was suspended: memory was rolled back by
// the aggressor, so the registers are restored and the region re-executes
// before the thread runs any further instruction.
func (rt *Runtime) OnResume() {
	if tx := rt.cur; tx != nil && tx.htmTx != nil && rt.m != nil {
		if err := tx.htmTx.PendingAbort(); err != nil {
			rt.Handle(rt.m, err)
		}
	}
}

// cloneSiteSet deep-copies one of the Table III site sets.
func cloneSiteSet(src map[int]bool) map[int]bool {
	dst := make(map[int]bool, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// Stats returns a snapshot of accumulated statistics. Every reference
// field is deep-copied — the sample slices and the site-set maps — so the
// snapshot stays frozen while the runtime keeps executing.
func (rt *Runtime) Stats() Stats {
	s := rt.stats
	s.LatencyCycles = append([]int64(nil), rt.stats.LatencyCycles...)
	s.TxSteps = append([]int64(nil), rt.stats.TxSteps...)
	s.TxWriteLines = append([]int64(nil), rt.stats.TxWriteLines...)
	s.GateSites = cloneSiteSet(rt.stats.GateSites)
	s.EmbedSites = cloneSiteSet(rt.stats.EmbedSites)
	s.BreakSites = cloneSiteSet(rt.stats.BreakSites)
	return s
}

// HTMStats exposes the hardware model's counters.
func (rt *Runtime) HTMStats() htm.Stats { return rt.tsx.Stats() }

// STMStats exposes the undo log's counters.
func (rt *Runtime) STMStats() stm.Stats { return rt.undo.Stats() }

// MemoryOverheadBytes reports runtime memory attributable to the recovery
// machinery (undo log capacity), used by the Fig. 9 experiment.
func (rt *Runtime) MemoryOverheadBytes() int64 { return rt.undo.MemoryBytes() }

// GateLatchedSTM reports whether a gate has permanently switched to STM
// (tests and the Fig. 3/6 experiments).
func (rt *Runtime) GateLatchedSTM(site int) bool {
	if site <= 0 || site >= len(rt.gs) {
		return false
	}
	return rt.gs[site].stmLatched
}

// GateLatchedDomains reports whether a gate has permanently switched to
// the rewind-and-discard strategy (tests and the ablation experiments).
func (rt *Runtime) GateLatchedDomains(site int) bool {
	if site <= 0 || site >= len(rt.gs) {
		return false
	}
	return rt.gs[site].domLatched
}

// LatchSTM pins a gate to STM permanently before execution — the paper's
// §IV-C "manual marking" policy, where hot regions (post-malloc
// initialization) are hand-annotated to skip HTM entirely.
func (rt *Runtime) LatchSTM(site int) {
	if site > 0 && site < len(rt.gs) {
		rt.gs[site].stmLatched = true
	}
}

// SiteAbortRate describes one gate's HTM abort behaviour — the paper's
// Fig. 3 attributes aborts to specific library calls this way (malloc,
// posix_memalign, fcntl64 on real Nginx).
type SiteAbortRate struct {
	Site    int
	Call    string
	Execs   int64
	Aborts  int64
	Latched bool
}

// AbortPct returns the site's abort percentage.
func (s SiteAbortRate) AbortPct() float64 {
	if s.Execs == 0 {
		return 0
	}
	return 100 * float64(s.Aborts) / float64(s.Execs)
}

// SiteAbortRates returns per-gate abort accounting for every gate that
// aborted at least once, ordered by site ID.
func (rt *Runtime) SiteAbortRates() []SiteAbortRate {
	var out []SiteAbortRate
	for site := range rt.gs {
		st := &rt.gs[site]
		if st.htmAborts == 0 {
			continue
		}
		name := ""
		if g := rt.gates[site]; g != nil {
			name = g.Name
		}
		out = append(out, SiteAbortRate{
			Site:    site,
			Call:    name,
			Execs:   st.execs,
			Aborts:  st.htmAborts,
			Latched: st.stmLatched,
		})
	}
	return out
}

// LatchedSites returns the gates currently latched to STM (used to carry
// a warmup run's learned policy into a fresh "manual" run).
func (rt *Runtime) LatchedSites() []int {
	var out []int
	for site := range rt.gs {
		if rt.gs[site].stmLatched {
			out = append(out, site)
		}
	}
	return out
}

func (rt *Runtime) state(site int) *gateState {
	if site <= 0 || site >= len(rt.gs) {
		// Defensive: unknown site, use a throwaway slot.
		return &gateState{}
	}
	return &rt.gs[site]
}

// routeStore sends a store through the active transaction.
func (rt *Runtime) routeStore(addr, val int64, width int) error {
	if tx := rt.cur; tx != nil {
		switch {
		case tx.htmTx != nil:
			return tx.htmTx.Store(addr, val, width)
		case tx.variant == ir.TxSTM:
			if rt.m != nil {
				rt.m.Cycles += costStmStore
			}
			return rt.undo.Store(addr, val, width)
		}
	}
	return rt.os.Space.Store(addr, val, width)
}

// --- interp.Runtime implementation ------------------------------------------

// LibCall implements interp.Runtime.
func (rt *Runtime) LibCall(m *interp.Machine, name string, args []int64, siteID int) (int64, error) {
	site := rt.sites[siteID]
	if site != nil && rt.gates[siteID] != nil {
		// Boundary call: runs outside any transaction (the shaper put a
		// TxEnd before it). Record it for compensation.
		rt.stats.GateSites[siteID] = true
		rec := &callRecord{call: libmodel.Call{Name: name, Args: append([]int64(nil), args...)}}
		if site.Entry.Capture != nil {
			rec.aux = site.Entry.Capture(rt.os, rec.call)
		}
		ret, err := rt.os.Call(name, args)
		if err != nil {
			return 0, err
		}
		rec.call.Ret = ret
		rt.lastCall[siteID] = rec
		return ret, nil
	}

	if site != nil {
		switch site.Role {
		case analysis.RoleEmbed:
			rt.stats.EmbedSites[siteID] = true
		case analysis.RoleBreak:
			rt.stats.BreakSites[siteID] = true
		}
	}

	entry := rt.model.Lookup(name)
	if tx := rt.cur; tx != nil && tx.variant != 0 && entry != nil {
		switch {
		case entry.Class == libmodel.Deferrable:
			// Defer the effect to commit time; report success now.
			tx.deferred = append(tx.deferred, deferredCall{name: name, args: append([]int64(nil), args...)})
			return 0, nil
		case entry.Compensate != nil:
			// Embedded reversible call: execute, but queue its
			// compensation for rollback.
			ret, err := rt.os.Call(name, args)
			if err != nil {
				return 0, err
			}
			c := libmodel.Call{Name: name, Args: append([]int64(nil), args...), Ret: ret}
			comp := entry.Compensate
			tx.comps = append(tx.comps, func() { comp(rt.os, c, nil) })
			return ret, nil
		}
	}
	return rt.os.Call(name, args)
}

// Gate implements interp.Runtime: the transaction entry gate dispatch.
func (rt *Runtime) Gate(m *interp.Machine, siteID int, snap *interp.Snapshot) (int64, bool, int64) {
	st := rt.state(siteID)
	st.execs++
	rt.stats.GateExecs++

	rt.pending.site = siteID
	rt.pending.snap = snap
	rt.pending.raw = false
	rt.pending.dom = false

	if st.injectPending || st.sticky {
		st.injectPending = false
		st.injected = true
		rt.stats.Injections++
		rt.pending.variant = ir.TxSTM
		errRet := rt.inject(m, siteID)
		return ir.TxSTM, true, errRet
	}

	variant := int64(ir.TxHTM)
	switch rt.cfg.Mode {
	case ModeSTMOnly:
		variant = ir.TxSTM
	case ModeRewind:
		// Every gate runs the rewind-and-discard strategy. The IR has no
		// third flow variant: a domain transaction executes the HTM-shaped
		// code path (no per-store instrumentation) with the dom flag
		// routing it past the hardware model.
		rt.pending.dom = true
	case ModeHTMOnly:
		if st.oneShotRaw {
			st.oneShotRaw = false
			rt.pending.raw = true
		}
	default: // ModeHybrid
		switch {
		case st.domLatched || st.oneShotDom:
			st.oneShotDom = false
			rt.pending.dom = true
		case st.stmLatched || st.oneShotSTM:
			st.oneShotSTM = false
			variant = ir.TxSTM
		}
	}
	rt.pending.variant = variant
	return variant, false, 0
}

// inject performs the Fault Injector's runtime action for a persistent
// crash: run the boundary call's compensation, set errno per the library
// documentation, and return the documented error value for the gate to
// install in the call's return register (§V-B).
func (rt *Runtime) inject(m *interp.Machine, siteID int) int64 {
	site := rt.gates[siteID]
	entry := site.Entry
	if rec := rt.lastCall[siteID]; rec != nil && entry.Compensate != nil {
		entry.Compensate(rt.os, rec.call, rec.aux)
		m.Cycles += costCompensation
	}
	if !entry.ErrnoDirect {
		rt.os.Errno = entry.Errno
	}
	rt.emit(EvInject, siteID, fmt.Sprintf("ret=%d errno=%d", entry.ErrorReturn, entry.Errno))
	return entry.ErrorReturn
}

// TxBegin implements interp.Runtime.
func (rt *Runtime) TxBegin(m *interp.Machine, siteID int, variant int64) error {
	if rt.cur != nil {
		// A new gate while a transaction is live should not happen (the
		// shaper ends transactions before boundary calls); recover by
		// committing.
		if err := rt.TxEnd(m); err != nil {
			return err
		}
	}
	if rt.pending.raw {
		// HTM-only fallback: run unprotected (no recovery guarantee).
		rt.pending.raw = false
		rt.stats.Unprotected++
		rt.cur = nil
		rt.curVariant = ir.TxHTM
		return nil
	}
	tx := &txState{
		site:       rt.pending.site,
		variant:    variant,
		snap:       rt.pending.snap,
		stdoutMark: rt.os.StdoutLen(),
		startSteps: m.Steps,
	}
	if rt.pending.dom {
		// Rewind-and-discard: switch nothing, log nothing — record the
		// live arena's bump offset and snapshot registers only. Rollback
		// is O(1) regardless of how many stores follow.
		rt.pending.dom = false
		tx.dom = true
		tx.arenaMark = rt.os.ArenaTxMark()
		tx.fallbackMark = rt.os.ArenaStats().Fallbacks
		rt.stats.DomainBegins++
		m.Cycles += costDomainBegin
	} else if variant == ir.TxHTM {
		tx.htmTx = rt.tsx.Begin(rt.os.Space)
		rt.stats.HTMBegins++
		m.Cycles += costHTMBegin
	} else {
		// The STM fallback serializes against every other thread: take
		// the global commit lock (dooming live hardware transactions,
		// which subscribed to its line at Begin), or block until the
		// holder commits and the scheduler wakes us to retry.
		if rt.domain != nil && !rt.domain.AcquireLock(rt.tid) {
			rt.waitingLock = true
			return libsim.ErrBlocked
		}
		rt.waitingLock = false
		rt.undo.Begin()
		rt.stats.STMBegins++
		m.Cycles += costSTMBegin
	}
	rt.cur = tx
	rt.curVariant = variant
	if rt.spanAll {
		rt.emitSpan(obsv.SpanBegin, tx.site, txVariantName(tx), "", "")
	}
	return nil
}

// txVariantName renders a live transaction's strategy for span output.
func txVariantName(tx *txState) string {
	if tx.dom {
		return "domain"
	}
	return variantName(tx.variant)
}

// TxEnd implements interp.Runtime: commit.
func (rt *Runtime) TxEnd(m *interp.Machine) error {
	tx := rt.cur
	if tx == nil {
		return nil
	}
	if len(rt.stats.TxSteps) < maxLatencySamples {
		rt.stats.TxSteps = append(rt.stats.TxSteps, m.Steps-tx.startSteps)
		var wset int64
		if tx.htmTx != nil {
			wset = int64(tx.htmTx.WriteSetLines())
		} else if tx.variant == ir.TxSTM {
			wset = int64(rt.undo.Len())
		}
		rt.stats.TxWriteLines = append(rt.stats.TxWriteLines, wset)
	}
	if tx.dom {
		rt.stats.DomainCommits++
		m.Cycles += costDomainCommit
		rt.domCommitPolicy(tx)
	} else if tx.htmTx != nil {
		if err := tx.htmTx.Commit(); err != nil {
			return err
		}
		rt.stats.HTMCommits++
		m.Cycles += costHTMCommit
	} else if tx.variant == ir.TxSTM {
		entries := int64(rt.undo.Len())
		if err := rt.undo.Commit(); err != nil {
			return err
		}
		if rt.domain != nil {
			rt.domain.ReleaseLock(rt.tid)
		}
		rt.stats.STMCommits++
		m.Cycles += costSTMCommit
		rt.stmCommitPolicy(tx.site, entries)
	}
	rt.cur = nil
	if rt.spanAll {
		rt.emitSpan(obsv.SpanCommit, tx.site, txVariantName(tx), "", "")
	}

	// A committed transaction closes its gate's crash episode.
	st := rt.state(tx.site)
	st.crashes = 0
	if st.injected {
		if rt.cfg.StickyDivert {
			st.sticky = true
		}
		st.injected = false
	}

	// Deferred effects (free/close/...) become real at commit.
	for _, d := range tx.deferred {
		rt.stats.DeferredRuns++
		if _, err := rt.os.Call(d.name, d.args); err != nil {
			return err
		}
	}
	return nil
}

// undoMin returns the gate's current undo-volume latch threshold (the
// configured default until back-off doubles it).
func (rt *Runtime) undoMin(st *gateState) int64 {
	if st.undoMin == 0 {
		return rt.cfg.DomainUndoMin
	}
	return st.undoMin
}

// stmCommitPolicy extends the §IV-C dynamic policy to the third strategy:
// an STM-latched gate whose mean undo-log volume (sampled every
// SampleSize commits) reaches the threshold latches onward to
// rewind-and-discard — the regime where O(1) discard beats replaying a
// long undo log on every crash.
func (rt *Runtime) stmCommitPolicy(site int, entries int64) {
	if rt.cfg.Mode != ModeHybrid || !rt.cfg.EnableDomains {
		return
	}
	st := rt.state(site)
	if !st.stmLatched || st.domLatched {
		return
	}
	st.stmTxs++
	st.stmUndo += entries
	if st.stmTxs%rt.cfg.SampleSize != 0 {
		return
	}
	if mean := st.stmUndo / st.stmTxs; mean >= rt.undoMin(st) {
		st.domLatched = true
		rt.stats.DomainLatches++
		rt.emit(EvLatchDomains, site,
			fmt.Sprintf("undo_mean=%d min=%d", mean, rt.undoMin(st)))
	}
}

// domCommitPolicy applies rewind-strategy back-off: a domain transaction
// that overflowed its arena into the heap escaped O(1) discard. After
// DomainBackoffMax such commits the gate re-latches to STM and the undo
// threshold doubles, so a gate only returns to domains once its undo
// volume clears a strictly higher bar.
func (rt *Runtime) domCommitPolicy(tx *txState) {
	if rt.cfg.Mode != ModeHybrid {
		return
	}
	st := rt.state(tx.site)
	if !st.domLatched || rt.os.ArenaStats().Fallbacks == tx.fallbackMark {
		return
	}
	st.domBackoff++
	if st.domBackoff < rt.cfg.DomainBackoffMax {
		return
	}
	st.undoMin = 2 * rt.undoMin(st)
	st.domLatched = false
	st.domBackoff = 0
	st.stmTxs, st.stmUndo = 0, 0
	st.stmLatched = true
	rt.emitSpan(obsv.SpanLatchSTM, tx.site, "", "backoff",
		fmt.Sprintf("fallbacks=%d undo_min=%d", rt.cfg.DomainBackoffMax, st.undoMin))
}

// Store implements interp.Runtime.
func (rt *Runtime) Store(m *interp.Machine, addr, val int64, width int, _ bool) error {
	return rt.routeStore(addr, val, width)
}

// Load implements interp.Runtime: inside a hardware transaction loads go
// through the TSX model so the touched lines join the read set (and a
// pending cross-thread abort is delivered); otherwise they are plain
// memory loads. No extra cycles — the machine charges CostMem either way.
func (rt *Runtime) Load(m *interp.Machine, addr int64, width int) (int64, error) {
	if tx := rt.cur; tx != nil && tx.htmTx != nil {
		return tx.htmTx.Load(addr, width)
	}
	return rt.os.Space.Load(addr, width)
}

// RegSave implements interp.Runtime: the STM register-save hook. The
// machine snapshot (taken at the gate) already preserves registers; this
// charges the cost the software path would pay (setjmp analog).
func (rt *Runtime) RegSave(m *interp.Machine) {
	if rt.pending.variant == ir.TxSTM && !rt.pending.raw {
		if d := m.Depth(); d > 0 {
			m.Cycles += costRegSavePer * 16
		}
	}
}

// Tick implements interp.Runtime: retire instructions against the HTM
// interrupt model. When the checkpoint ring is armed (replay only) the
// cycle threshold is tested here, so captures land at instruction
// boundaries regardless of transaction state.
func (rt *Runtime) Tick(m *interp.Machine, n int64) error {
	if rt.ckptEvery > 0 && m.Cycles >= rt.ckptNext {
		rt.checkpoint(m)
		for rt.ckptNext <= m.Cycles {
			rt.ckptNext += rt.ckptEvery
		}
	}
	if tx := rt.cur; tx != nil && tx.htmTx != nil {
		return tx.htmTx.Tick(n)
	}
	return nil
}

// TickLive implements interp.TickCoalescer: Tick only does work while a
// hardware transaction is live, so the bytecode backend may skip the
// per-instruction call (and the position bookkeeping feeding it) whenever
// this reports false. An armed checkpoint ring needs every tick too
// (replay forces the tree walker anyway; this keeps the contract honest
// if checkpoints are ever combined with the bytecode backend).
func (rt *Runtime) TickLive() bool {
	if rt.ckptEvery > 0 {
		return true
	}
	tx := rt.cur
	return tx != nil && tx.htmTx != nil
}

// TickBudget implements interp.TickBatcher: while a hardware transaction
// is live, ticks strictly before the next modelled interrupt are pure
// countdown decrements the backend may defer and deliver in one batch.
func (rt *Runtime) TickBudget() int64 {
	if rt.ckptEvery > 0 {
		return 1
	}
	tx := rt.cur
	if tx == nil || tx.htmTx == nil {
		return math.MaxInt64
	}
	return tx.htmTx.TickBudget()
}

// Variant implements interp.Runtime: the flow-switch selector.
func (rt *Runtime) Variant() int64 {
	if tx := rt.cur; tx != nil && tx.variant != 0 {
		return tx.variant
	}
	return rt.curVariant
}

// Handle implements interp.Runtime: the recovery brain.
func (rt *Runtime) Handle(m *interp.Machine, err error) interp.Action {
	if errors.Is(err, libsim.ErrBlocked) {
		return interp.ActionBlock
	}

	var abortErr *htm.AbortError
	if errors.As(err, &abortErr) {
		return rt.handleHTMAbort(m, abortErr.Cause)
	}

	// Everything else is a fail-stop crash: an interpreter trap, heap
	// corruption, or a wild memory access inside a library call.
	return rt.handleCrash(m, err)
}

// domainViolation extracts the faulting address of a cross-domain access
// trap (ir.TrapDomain) — the fail-stop crash cause heap domains introduce
// so fail-silent corruption is contained instead of spreading.
func domainViolation(err error) (int64, bool) {
	var trap *interp.Trap
	if errors.As(err, &trap) && trap.Code == ir.TrapDomain {
		return trap.Addr, true
	}
	return 0, false
}

// noteViolation counts and records a cross-domain trap. The violation
// span is emitted immediately before the crash/shed/unrecovered span it
// becomes, so the causal chain reads: violation → how the ladder handled
// it.
func (rt *Runtime) noteViolation(site int, addr int64) {
	rt.stats.DomainViolations++
	rt.emitSpan(obsv.SpanDomainViolation, site, "", "",
		fmt.Sprintf("addr=%#x dom=%d", addr, rt.os.Space.CurrentDomain()))
}

// handleHTMAbort processes a capacity/interrupt abort: the hardware rolled
// memory back; restore registers, apply the adaptive policy, and re-execute
// the region (via STM in hybrid mode, unprotected in HTM-only mode).
func (rt *Runtime) handleHTMAbort(m *interp.Machine, cause htm.AbortCause) interp.Action {
	tx := rt.cur
	if tx == nil || tx.htmTx == nil {
		return interp.ActionDie
	}
	rt.noteHTMAbort(tx.site, cause)
	rt.rollbackSideEffects(tx)
	m.Restore(tx.snap)
	m.Cycles += costHTMAbort
	rt.cur = nil

	st := rt.state(tx.site)
	if rt.cfg.Mode == ModeHTMOnly {
		st.oneShotRaw = true
	} else {
		st.oneShotSTM = true
	}
	return interp.ActionContinue
}

// noteHTMAbort updates the per-gate abort accounting and applies the
// dynamic adaptation policy (§IV-C).
func (rt *Runtime) noteHTMAbort(site int, cause htm.AbortCause) {
	st := rt.state(site)
	st.htmAborts++
	if cause == htm.AbortCapacity {
		st.capAborts++
	}
	rt.stats.HTMAborts++
	rt.emitSpan(obsv.SpanAbort, site, "htm", cause.String(),
		fmt.Sprintf("aborts=%d execs=%d", st.htmAborts, st.execs))
	if rt.cfg.Mode == ModeHybrid && st.htmAborts%rt.cfg.SampleSize == 0 {
		if float64(st.htmAborts)/float64(st.execs) > rt.cfg.Threshold {
			if rt.cfg.EnableDomains && !st.domLatched && st.capAborts*2 >= st.htmAborts {
				// Capacity-dominant aborts: the write set is what does
				// not fit, so the undo log would be long too — latch
				// straight to rewind-and-discard, skipping the STM
				// detour.
				st.domLatched = true
				rt.stats.DomainLatches++
				rt.emit(EvLatchDomains, site,
					fmt.Sprintf("cap_aborts=%d aborts=%d", st.capAborts, st.htmAborts))
				return
			}
			if !st.stmLatched {
				rt.emit(EvLatchSTM, site, "")
			}
			st.stmLatched = true
		}
	}
}

// ArmQuiesce registers the machine's current state as the app's quiesce
// point: the request-handling frame (typically blocked in the epoll/accept
// loop) that shedding restores when it drops a request. Arm it once the
// server has booted and blocked for the first time; until then the shed
// rung is inert and fatal crashes kill the process as before.
func (rt *Runtime) ArmQuiesce(m *interp.Machine) { rt.quiesce = m.Snapshot() }

// QuiesceArmed reports whether a quiesce point has been registered.
func (rt *Runtime) QuiesceArmed() bool { return rt.quiesce != nil }

// canShed reports whether the shed rung may absorb a fatal crash.
func (rt *Runtime) canShed() bool {
	return rt.quiesce != nil && rt.stats.Sheds < int64(rt.cfg.MaxSheds)
}

// shed is the last in-process rung of the recovery ladder: drop the
// request being served instead of dying. The offending connection is
// reset via the simulated OS (the client observes the close and moves
// on), the boot-time quiesce snapshot is restored, and the event loop
// resumes serving other clients. Memory is NOT rolled back beyond what
// the transaction machinery already undid — shedding trades the dropped
// request's partial state for the process's survival.
func (rt *Runtime) shed(m *interp.Machine, site int, reason string) interp.Action {
	// Capture the served request's trace before ShedConn clears the
	// serving descriptor, so the shed span joins the right causal chain.
	trace := rt.os.CurrentTrace()
	fd := rt.os.ShedConn()
	m.Restore(rt.quiesce)
	m.Cycles += costShed
	rt.cur = nil
	rt.stats.Sheds++
	if fd >= 0 {
		rt.stats.ShedConnsLost++
	}
	rt.markTouched(trace)
	rt.emitSpanTrace(obsv.SpanShed, site, trace, "", reason,
		fmt.Sprintf("fd=%d sheds=%d", fd, rt.stats.Sheds))
	return interp.ActionContinue
}

// handleCrash processes a fail-stop trap.
func (rt *Runtime) handleCrash(m *interp.Machine, err error) interp.Action {
	tx := rt.cur
	if tx == nil || tx.variant == 0 {
		// Unprotected execution (startup, post-irrecoverable region, or
		// the HTM-only fallback): nothing to roll back. With a quiesce
		// point armed the crash is shed; otherwise it is fatal.
		site := 0
		if tx != nil {
			site = tx.site
		}
		if addr, ok := domainViolation(err); ok {
			rt.noteViolation(site, addr)
		}
		if rt.canShed() {
			m.Cycles += costSignal
			return rt.shed(m, site, "crash outside any transaction")
		}
		rt.stats.Unrecovered++
		rt.emit(EvUnrecovered, site, "crash outside any transaction")
		return interp.ActionDie
	}

	if tx.htmTx != nil {
		// A fault inside a hardware transaction surfaces as an abort;
		// per the paper the runtime cannot yet distinguish a crash from
		// a resource abort, so it re-executes under STM first (§IV-C).
		tx.htmTx.Abort(htm.AbortExplicit)
		rt.noteHTMAbort(tx.site, htm.AbortExplicit)
		rt.rollbackSideEffects(tx)
		m.Restore(tx.snap)
		m.Cycles += costHTMAbort
		rt.cur = nil
		if rt.cfg.Mode == ModeHTMOnly {
			rt.state(tx.site).oneShotRaw = true
		} else {
			rt.state(tx.site).oneShotSTM = true
		}
		return interp.ActionContinue
	}

	// Crash under STM or a domain-armed transaction: a confirmed
	// fail-stop fault.
	latStart := m.Cycles
	rt.stats.Crashes++
	cause := ""
	if addr, ok := domainViolation(err); ok {
		cause = "domain-violation"
		rt.noteViolation(tx.site, addr)
	}
	if tx.dom {
		// Rewind-and-discard rollback: no undo replay. Compensations and
		// deferred effects revert as usual, then the arena's bump pointer
		// rewinds to the entry mark (tail rezeroed, O(1) in the cost
		// model) and the register snapshot restores.
		rt.emitSpan(obsv.SpanCrash, tx.site, "domain", cause, "")
		rt.rollbackSideEffects(tx)
		dom := rt.os.ActiveArenaDom()
		mark := tx.arenaMark
		if mark < 0 {
			mark = 0 // the arena opened inside the transaction: discard it all
		}
		rt.os.ArenaTxRewind(mark)
		m.Restore(tx.snap)
		m.Cycles += costSignal + costDomainDiscard
		rt.cur = nil
		rt.stats.DomainDiscards++
		rt.emitSpan(obsv.SpanDomainDiscard, tx.site, "domain", "",
			fmt.Sprintf("dom=%d mark=%d", dom, mark))
	} else {
		rt.emitSpan(obsv.SpanCrash, tx.site, "stm", cause, "")
		undone, rerr := rt.undo.Rollback()
		if rerr != nil {
			// The undo log could not restore memory: the heap is inconsistent,
			// so neither shedding nor restarting the region is safe. Die — but
			// visibly: the death must appear in the trace and span log like
			// every other unrecovered crash.
			rt.stats.Unrecovered++
			rt.emit(EvUnrecovered, tx.site, fmt.Sprintf("undo-log rollback failed: %v", rerr))
			return interp.ActionDie
		}
		m.Cycles += int64(undone) * costSTMUndoEntry
		if rt.domain != nil {
			rt.domain.ReleaseLock(rt.tid)
		}
		rt.rollbackSideEffects(tx)
		m.Restore(tx.snap)
		m.Cycles += costSignal
		rt.cur = nil
	}

	st := rt.state(tx.site)
	st.crashes++
	switch {
	case st.crashes <= rt.cfg.RetryTransient:
		// Assume transient: re-execute under the same strategy.
		if tx.dom {
			st.oneShotDom = true
		} else {
			st.oneShotSTM = true
		}
		rt.stats.Retries++
		rt.emit(EvRetry, tx.site, fmt.Sprintf("attempt=%d", st.crashes))
	default:
		// Persistent: inject a fault at the gate, if the site allows it
		// and we have not already diverted this episode. When injection is
		// off the table the ladder escalates to shedding: close the crash
		// episode, drop the request, and resume at the quiesce point.
		site := rt.gates[tx.site]
		if site == nil || !site.Entry.Injectable() || st.injected {
			if rt.canShed() {
				st.crashes = 0
				st.injected = false
				return rt.shed(m, tx.site, "persistent fault, no injectable gate")
			}
			rt.stats.Unrecovered++
			rt.emit(EvUnrecovered, tx.site, "persistent fault, no injectable gate")
			return interp.ActionDie
		}
		st.injectPending = true
	}
	// Bound the sample buffer: a persistent fault in a request loop can
	// produce one recovery per request indefinitely.
	lat := m.Cycles - latStart
	if len(rt.stats.LatencyCycles) < maxLatencySamples {
		rt.stats.LatencyCycles = append(rt.stats.LatencyCycles, lat)
	}
	rt.emit(EvRecovered, tx.site, fmt.Sprintf("latency=%d", lat))
	return interp.ActionContinue
}

// maxLatencySamples bounds the Fig. 5 latency sample buffer.
const maxLatencySamples = 100_000

// rollbackSideEffects reverts transaction side effects beyond memory:
// compensations for embedded reversible calls (in reverse order), output
// written by embedded printf/puts, and queued deferred actions (which
// simply never happen).
func (rt *Runtime) rollbackSideEffects(tx *txState) {
	for i := len(tx.comps) - 1; i >= 0; i-- {
		tx.comps[i]()
	}
	tx.comps = nil
	tx.deferred = nil
	rt.os.TruncateStdout(tx.stdoutMark)
}
