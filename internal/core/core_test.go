package core_test

import (
	"strings"
	"testing"

	"github.com/firestarter-go/firestarter/internal/core"
	"github.com/firestarter-go/firestarter/internal/htm"
	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/mem"
	"github.com/firestarter-go/firestarter/internal/minic"
	"github.com/firestarter-go/firestarter/internal/transform"
)

// harness bundles a hardened program ready to run.
type harness struct {
	os *libsim.OS
	m  *interp.Machine
	rt *core.Runtime
}

func newHarness(t *testing.T, src string, cfg core.Config) *harness {
	t.Helper()
	prog, err := minic.Compile(src, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	tr, err := transform.Apply(prog, nil)
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	o := libsim.New(mem.NewSpace())
	rt := core.New(tr, o, cfg)
	m, err := interp.New(tr.Prog, o, rt)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	rt.Attach(m)
	return &harness{os: o, m: m, rt: rt}
}

func (h *harness) runToExit(t *testing.T, want int64) {
	t.Helper()
	out := h.m.Run(20_000_000)
	if out.Kind != interp.OutExited {
		t.Fatalf("outcome = %v (trap %+v), want exit", out.Kind, out.Trap)
	}
	if h.m.ExitCode() != want {
		t.Fatalf("exit code = %d, want %d", h.m.ExitCode(), want)
	}
}

func TestInstrumentedProgramRunsCleanly(t *testing.T) {
	// No faults: the instrumented program must behave exactly like the
	// vanilla one.
	src := `
int main() {
	char *p = malloc(256);
	if (!p) { return 1; }
	memset(p, 'a', 255);
	p[255] = 0;
	int n = strlen(p);
	free(p);
	return n;
}`
	h := newHarness(t, src, core.Config{})
	h.runToExit(t, 255)
	st := h.rt.Stats()
	if st.GateExecs == 0 {
		t.Error("no gates executed; instrumentation inactive?")
	}
	if st.Crashes != 0 || st.Injections != 0 {
		t.Errorf("unexpected recovery events: %+v", st)
	}
}

func TestPersistentCrashRecoversViaInjection(t *testing.T) {
	// A persistent null-pointer dereference right after a checked malloc:
	// FIRestarter must roll back, inject ENOMEM into malloc, and let the
	// application's own error path produce the result.
	src := `
int handle() {
	char *p = malloc(64);
	if (!p) {
		puts("alloc failed, aborting request");
		return -1;
	}
	int *q = NULL;
	*q = 1;        // the residual bug
	free(p);
	return 0;
}
int main() {
	if (handle() == -1) { return 55; }
	return 0;
}`
	h := newHarness(t, src, core.Config{})
	h.runToExit(t, 55)
	st := h.rt.Stats()
	if st.Injections != 1 {
		t.Errorf("injections = %d, want 1", st.Injections)
	}
	if st.Crashes == 0 {
		t.Error("no crashes recorded")
	}
	if st.Unrecovered != 0 {
		t.Errorf("unrecovered = %d", st.Unrecovered)
	}
	if !strings.Contains(h.os.Stdout(), "alloc failed") {
		t.Errorf("error handler did not run: stdout = %q", h.os.Stdout())
	}
	// The compensation action freed the block malloc really allocated.
	if h.os.Heap().LiveBytes() != 0 {
		t.Errorf("leaked %d bytes across recovery", h.os.Heap().LiveBytes())
	}
	if len(st.LatencyCycles) == 0 {
		t.Error("no recovery latency samples recorded")
	}
}

func TestTransientCrashRecoversByRetry(t *testing.T) {
	// The crash condition depends on the simulated clock, which advances
	// across re-executions: the first attempt crashes, the retry passes.
	// STM-only mode makes the attempt counting deterministic.
	src := `
int main() {
	char *p = malloc(16);
	if (!p) { return 90; }
	int t = clock_gettime();
	if (t < 1500) {
		int *q = NULL;
		*q = 1;      // "transient": gone on re-execution
	}
	free(p);
	return 7;
}`
	h := newHarness(t, src, core.Config{Mode: core.ModeSTMOnly})
	h.runToExit(t, 7)
	st := h.rt.Stats()
	if st.Crashes != 1 || st.Retries != 1 {
		t.Errorf("crashes/retries = %d/%d, want 1/1", st.Crashes, st.Retries)
	}
	if st.Injections != 0 {
		t.Errorf("injections = %d, want 0 (transient must not divert)", st.Injections)
	}
}

func TestCrashInHTMFirstReexecutesUnderSTM(t *testing.T) {
	// In hybrid mode, a crash inside a hardware transaction first aborts
	// and re-executes under STM (the runtime cannot distinguish crash
	// from capacity at abort time, §IV-C). A clock-transient fault is
	// therefore absorbed by that STM re-execution without ever being
	// counted as a crash.
	src := `
int main() {
	char *p = malloc(16);
	if (!p) { return 90; }
	int t = clock_gettime();
	if (t < 1500) {
		int *q = NULL;
		*q = 1;
	}
	free(p);
	return 7;
}`
	h := newHarness(t, src, core.Config{Mode: core.ModeHybrid})
	h.runToExit(t, 7)
	st := h.rt.Stats()
	if st.HTMAborts == 0 {
		t.Error("no HTM abort recorded for the in-HTM crash")
	}
	if st.Crashes != 0 {
		t.Errorf("crashes = %d, want 0 (absorbed by STM re-execution)", st.Crashes)
	}
}

func TestRollbackRestoresMemoryExactly(t *testing.T) {
	// The global is incremented inside the crashing transaction; rollback
	// plus diversion must leave exactly one increment from the final
	// (diverted) execution — the crashed attempts must not leak state.
	src := `
int counter = 0;
int main() {
	char *p = malloc(32);
	if (!p) { return counter; }
	counter = counter + 100;
	int *q = NULL;
	*q = 1;
	return -1;
}`
	h := newHarness(t, src, core.Config{})
	h.runToExit(t, 0)
}

func TestDeferredFreeAcrossRollback(t *testing.T) {
	// free() executes inside the transaction (embedded, deferrable): on
	// rollback it must not have happened; on commit it must happen once.
	src := `
int main() {
	char *p = malloc(48);
	if (!p) { return 9; }
	char *q = malloc(16);
	if (!q) {
		// Error path after injection: p must still be live here, since
		// the crashed transaction's free(p) was rolled back.
		p[0] = 'o';
		p[1] = 'k';
		p[2] = 0;
		puts(p);
		free(p);
		return 33;
	}
	free(p);       // deferred inside the q-transaction
	int *bad = NULL;
	*bad = 1;      // persistent crash in the same transaction
	free(q);
	return 0;
}`
	h := newHarness(t, src, core.Config{})
	h.runToExit(t, 33)
	if got := h.os.Stdout(); !strings.Contains(got, "ok") {
		t.Errorf("error path did not see live p: stdout = %q", got)
	}
	if h.os.Heap().LiveBytes() != 0 {
		t.Errorf("leak after recovery: %d live bytes", h.os.Heap().LiveBytes())
	}
	if h.rt.Stats().Injections != 1 {
		t.Errorf("injections = %d, want 1", h.rt.Stats().Injections)
	}
}

func TestEmbeddedOutputRolledBack(t *testing.T) {
	// Log lines written inside a crashed transaction must not appear
	// twice after re-execution.
	src := `
int main() {
	char *p = malloc(16);
	if (!p) { return 2; }
	puts("processing");
	int t = clock_gettime();
	if (t < 1500) {
		int *q = NULL;
		*q = 1;
	}
	free(p);
	return 0;
}`
	h := newHarness(t, src, core.Config{Mode: core.ModeSTMOnly})
	h.runToExit(t, 0)
	if got := strings.Count(h.os.Stdout(), "processing"); got != 1 {
		t.Errorf("log line appeared %d times, want exactly 1:\n%s", got, h.os.Stdout())
	}
}

func TestCapacityAbortFallsBackToSTM(t *testing.T) {
	// Initializing 64 KiB right after malloc exceeds the modelled L1
	// write buffer: HTM must abort with capacity and the region must
	// complete under STM — the paper's Fig. 3 scenario.
	src := `
int main() {
	char *p = malloc(65536);
	if (!p) { return 1; }
	memset(p, 7, 65536);
	int ok = p[0] == 7 && p[65535] == 7;
	free(p);
	return ok;
}`
	h := newHarness(t, src, core.Config{})
	h.runToExit(t, 1)
	st := h.rt.Stats()
	if st.HTMAborts == 0 {
		t.Error("no capacity abort for 64 KiB initialization")
	}
	if st.STMBegins == 0 {
		t.Error("no STM fallback")
	}
	if h.rt.HTMStats().ByCapac == 0 {
		t.Errorf("hardware stats: %+v, want capacity aborts", h.rt.HTMStats())
	}
}

func TestAdaptivePolicyLatchesHotGate(t *testing.T) {
	// A loop whose body always blows HTM capacity: after enough aborts
	// the gate must latch to STM permanently, so HTM begins stop growing.
	src := `
int main() {
	for (int i = 0; i < 50; i++) {
		char *p = malloc(65536);
		if (!p) { return 1; }
		memset(p, i, 65536);
		free(p);
	}
	return 0;
}`
	h := newHarness(t, src, core.Config{Threshold: 0.01, SampleSize: 4})
	h.runToExit(t, 0)
	st := h.rt.Stats()
	if st.HTMAborts >= 20 {
		t.Errorf("policy did not latch: %d aborts over 50 iterations", st.HTMAborts)
	}
	if st.STMBegins < 40 {
		t.Errorf("STM begins = %d, want most of the 50 iterations", st.STMBegins)
	}
}

func TestSTMOnlyNeverUsesHTM(t *testing.T) {
	h := newHarness(t, `
int main() {
	char *p = malloc(64);
	if (!p) { return 1; }
	p[1] = 2;
	free(p);
	return 0;
}`, core.Config{Mode: core.ModeSTMOnly})
	h.runToExit(t, 0)
	if st := h.rt.Stats(); st.HTMBegins != 0 || st.STMBegins == 0 {
		t.Errorf("stats = %+v, want STM only", st)
	}
}

func TestHTMOnlyDiesOnPersistentCrash(t *testing.T) {
	// The HTM-only baseline falls back to unprotected execution, so a
	// persistent crash is fatal — "no recovery guarantees at all".
	src := `
int main() {
	char *p = malloc(64);
	if (!p) { return 1; }
	int *q = NULL;
	*q = 1;
	return 0;
}`
	h := newHarness(t, src, core.Config{Mode: core.ModeHTMOnly})
	out := h.m.Run(10_000_000)
	if out.Kind != interp.OutTrapped {
		t.Fatalf("outcome = %v, want trapped", out.Kind)
	}
	st := h.rt.Stats()
	if st.Injections != 0 {
		t.Errorf("HTM-only injected a fault: %+v", st)
	}
	if st.Unprotected == 0 {
		t.Error("no unprotected fallback execution recorded")
	}
}

func TestCrashAfterIrrecoverableCallDies(t *testing.T) {
	// write() ends the transaction; the crash lands in the unprotected
	// region and must be fatal ("the application cannot recover until
	// the next library call amenable to fault injection").
	src := `
int main() {
	char buf[4];
	buf[0] = 'x';
	int rc = write(1, buf, 1);
	if (rc < 0) { return 1; }
	int *q = NULL;
	*q = 1;
	return 0;
}`
	h := newHarness(t, src, core.Config{})
	out := h.m.Run(10_000_000)
	if out.Kind != interp.OutTrapped {
		t.Fatalf("outcome = %v, want trapped", out.Kind)
	}
	if st := h.rt.Stats(); st.Unrecovered == 0 {
		t.Errorf("stats = %+v, want unrecovered crash", st)
	}
}

func TestCompensationClosesInjectedOpen(t *testing.T) {
	// Injection into open() must close the descriptor the real call
	// produced (the compensation action), so no fd leaks.
	src := `
int main() {
	char path[4];
	path[0] = '/'; path[1] = 'f'; path[2] = 0;
	int fd = open(path, 0);
	if (fd < 0) { return 44; }
	int *q = NULL;
	*q = 1;
	close(fd);
	return 0;
}`
	h := newHarness(t, src, core.Config{})
	h.os.FS().Add("/f", []byte("data"))
	h.runToExit(t, 44)
	if h.os.OpenFDs() != 0 {
		t.Errorf("OpenFDs = %d after injected open, want 0", h.os.OpenFDs())
	}
	if h.rt.Stats().Injections != 1 {
		t.Errorf("injections = %d", h.rt.Stats().Injections)
	}
}

func TestInjectionSetsErrno(t *testing.T) {
	src := `
int main() {
	char *p = malloc(64);
	if (!p) { return errno(); }
	int *q = NULL;
	*q = 1;
	return 0;
}`
	h := newHarness(t, src, core.Config{})
	h.runToExit(t, libsim.ENOMEM)
}

func TestCrashInErrorHandlerIsFatal(t *testing.T) {
	// "There is no error handler for the error handler": if the diverted
	// path crashes in the same transaction, recovery must give up.
	src := `
int main() {
	char *p = malloc(64);
	if (!p) {
		int *q = NULL;
		*q = 2;     // bug in the error handler itself
		return 1;
	}
	int *r = NULL;
	*r = 1;         // original persistent bug
	free(p);
	return 0;
}`
	h := newHarness(t, src, core.Config{})
	out := h.m.Run(10_000_000)
	if out.Kind != interp.OutTrapped {
		t.Fatalf("outcome = %v, want trapped", out.Kind)
	}
	if st := h.rt.Stats(); st.Unrecovered == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCrashDuringStartupIsFatal(t *testing.T) {
	// Before the first gate there is no checkpoint to roll back to.
	src := `
int g = 0;
int main() {
	int *q = NULL;
	*q = 1;
	return g;
}`
	h := newHarness(t, src, core.Config{})
	out := h.m.Run(1_000_000)
	if out.Kind != interp.OutTrapped {
		t.Fatalf("outcome = %v, want trapped", out.Kind)
	}
}

func TestFlowSwitchAcrossFunctionBoundary(t *testing.T) {
	// A callee whose gate latches STM returns into an HTM-clone caller
	// block: the return-site flow switch must land in the STM clone so
	// subsequent stores are undo-logged. The test exercises this heavily
	// and checks pure functional correctness.
	src := `
int fill(char *p, int n, int v) {
	char *big = malloc(65536);
	if (!big) { return -1; }
	memset(big, v, 65536);
	int sum = big[100];
	free(big);
	memset(p, v, n);
	return sum;
}
int main() {
	char buf[64];
	int total = 0;
	for (int i = 1; i <= 20; i++) {
		int rc = fill(buf, 64, i);
		if (rc < 0) { return -1; }
		total += buf[0];
	}
	return total;
}`
	h := newHarness(t, src, core.Config{})
	h.runToExit(t, 210) // 1+2+...+20
}

func TestInterruptAbortsAreAbsorbed(t *testing.T) {
	// With an aggressive interrupt process, transactions abort at random
	// points; the program must still complete correctly via STM
	// re-execution.
	src := `
int main() {
	int total = 0;
	for (int i = 0; i < 30; i++) {
		char *p = malloc(128);
		if (!p) { return -1; }
		memset(p, 1, 128);
		total += p[5];
		free(p);
	}
	return total;
}`
	h := newHarness(t, src, core.Config{
		HTM: htm.Config{MeanInstrsPerInterrupt: 200, Seed: 7},
	})
	h.runToExit(t, 30)
	if h.rt.HTMStats().ByIntr == 0 {
		t.Error("no interrupt aborts with mean gap 200")
	}
}

func TestStickyDivertDisablesPath(t *testing.T) {
	// With StickyDivert, once a gate diverts, every subsequent execution
	// takes the error path without crashing again.
	src := `
int crashes_survived = 0;
int work() {
	char *p = malloc(32);
	if (!p) { return -1; }
	int *q = NULL;
	*q = 1;
	free(p);
	return 0;
}
int main() {
	int diverted = 0;
	for (int i = 0; i < 5; i++) {
		if (work() == -1) { diverted++; }
	}
	return diverted;
}`
	h := newHarness(t, src, core.Config{StickyDivert: true})
	h.runToExit(t, 5)
	st := h.rt.Stats()
	if st.Injections != 5 {
		t.Errorf("injections = %d, want 5 (sticky)", st.Injections)
	}
	// Only the first iteration should crash; the rest divert directly.
	if st.Crashes > 2 {
		t.Errorf("crashes = %d, want at most 2 with sticky divert", st.Crashes)
	}
}

func TestNonStickyReinjectsPerEpisode(t *testing.T) {
	src := `
int work() {
	char *p = malloc(32);
	if (!p) { return -1; }
	int *q = NULL;
	*q = 1;
	free(p);
	return 0;
}
int main() {
	int diverted = 0;
	for (int i = 0; i < 3; i++) {
		if (work() == -1) { diverted++; }
	}
	return diverted;
}`
	h := newHarness(t, src, core.Config{})
	h.runToExit(t, 3)
	st := h.rt.Stats()
	if st.Injections != 3 {
		t.Errorf("injections = %d, want 3 (one per episode)", st.Injections)
	}
	if st.Crashes < 3 {
		t.Errorf("crashes = %d, want at least one per episode", st.Crashes)
	}
}

func TestReadCompensationPushesDataBack(t *testing.T) {
	// Injection into read() must push the consumed bytes back into the
	// connection so environment state matches the checkpoint; the error
	// path then closes the connection.
	src := `
int main() {
	int s = socket();
	if (s < 0) { return 1; }
	if (bind(s, 80) == -1) { return 2; }
	if (listen(s, 4) == -1) { return 3; }
	int fd = -1;
	while (fd < 0) { fd = accept(s); }
	char buf[64];
	int n = read(fd, buf, 64);
	if (n < 0) {
		puts("read failed");
		close(fd);
		return 77;
	}
	int *q = NULL;
	*q = 1;     // persistent crash after a successful read
	return 0;
}`
	h := newHarness(t, src, core.Config{})
	// Let the server bind and spin in its accept loop, then connect.
	if out := h.m.Run(30_000); out.Kind != interp.OutStepLimit {
		t.Fatalf("setup run outcome = %v, want step-limit (accept spin)", out.Kind)
	}
	c := h.os.Connect(80)
	if c == nil {
		t.Fatal("server did not bind port 80")
	}
	c.ClientDeliver([]byte("hello"))
	h.runToExit(t, 77)
	// The consumed bytes were pushed back before the injected error.
	if c.InboundLen() != 5 {
		t.Errorf("inbound queue = %d bytes after compensation, want 5", c.InboundLen())
	}
	if !strings.Contains(h.os.Stdout(), "read failed") {
		t.Errorf("stdout = %q", h.os.Stdout())
	}
}
