package core

import "github.com/firestarter-go/firestarter/internal/obsv"

// PublishMetrics copies the runtime's accumulated counters — recovery
// statistics, the hardware and software transaction models, the Table III
// site sets, and the Fig. 5 sample distributions — into a metrics
// registry under the given labels (typically a thread or app label).
//
// Publishing is a collection-time operation: the recovery hot paths keep
// their hand-rolled counters and never see the registry, so attaching
// metrics changes no charged cycle and allocates nothing while the guest
// program runs. The published totals reconcile exactly with Stats(),
// HTMStats() and STMStats().
func (rt *Runtime) PublishMetrics(reg *obsv.Registry, labels ...obsv.Label) {
	s := rt.stats
	reg.Counter("core.gate_execs", labels...).Add(s.GateExecs)
	reg.Counter("core.htm_begins", labels...).Add(s.HTMBegins)
	reg.Counter("core.htm_commits", labels...).Add(s.HTMCommits)
	reg.Counter("core.stm_begins", labels...).Add(s.STMBegins)
	reg.Counter("core.stm_commits", labels...).Add(s.STMCommits)
	reg.Counter("core.unprotected", labels...).Add(s.Unprotected)
	reg.Counter("core.htm_aborts", labels...).Add(s.HTMAborts)
	reg.Counter("core.crashes", labels...).Add(s.Crashes)
	reg.Counter("core.retries", labels...).Add(s.Retries)
	reg.Counter("core.injections", labels...).Add(s.Injections)
	reg.Counter("core.unrecovered", labels...).Add(s.Unrecovered)
	reg.Counter("core.deferred_runs", labels...).Add(s.DeferredRuns)
	reg.Counter("core.sheds", labels...).Add(s.Sheds)
	reg.Counter("core.shed_conns_lost", labels...).Add(s.ShedConnsLost)
	reg.Counter("core.req_starts", labels...).Add(s.ReqStarts)
	reg.Counter("core.req_done", labels...).Add(s.ReqsDone)
	reg.Counter("core.req_lost", labels...).Add(s.ReqsLost)

	if rt.cfg.EnableDomains {
		// The heap-domain surface exists only when the feature is on, so
		// a domains-off run publishes byte-identical metrics to a build
		// without it. All seven reconcile exactly with Stats(), and the
		// arena counters with libsim's ArenaStats().
		reg.Counter("core.domain_begins", labels...).Add(s.DomainBegins)
		reg.Counter("core.domain_commits", labels...).Add(s.DomainCommits)
		reg.Counter("core.domain_switches", labels...).Add(s.DomainSwitches)
		reg.Counter("core.domain_retires", labels...).Add(s.DomainRetires)
		reg.Counter("core.domain_discards", labels...).Add(s.DomainDiscards)
		reg.Counter("core.domain_violations", labels...).Add(s.DomainViolations)
		reg.Counter("core.domain_latches", labels...).Add(s.DomainLatches)
		ast := rt.os.ArenaStats()
		reg.Counter("core.arena_allocs", labels...).Add(ast.Allocs)
		reg.Counter("core.arena_fallbacks", labels...).Add(ast.Fallbacks)
		reg.Counter("core.arena_retires", labels...).Add(ast.Retires)
		reg.Gauge("core.arena_slabs", labels...).Add(ast.Slabs)
	}

	reg.Gauge("core.sites_gate", labels...).Add(int64(len(s.GateSites)))
	reg.Gauge("core.sites_embed", labels...).Add(int64(len(s.EmbedSites)))
	reg.Gauge("core.sites_break", labels...).Add(int64(len(s.BreakSites)))

	reg.Counter("core.trace_events", labels...).Add(int64(rt.spans.Len()))
	reg.Counter("core.trace_dropped", labels...).Add(rt.spans.Dropped())

	lat := reg.Histogram("core.recovery_latency_cycles", obsv.CycleBuckets, labels...)
	for _, v := range s.LatencyCycles {
		lat.Observe(v)
	}
	steps := reg.Histogram("core.tx_steps", obsv.CountBuckets, labels...)
	for _, v := range s.TxSteps {
		steps.Observe(v)
	}
	lines := reg.Histogram("core.tx_write_lines", obsv.CountBuckets, labels...)
	for _, v := range s.TxWriteLines {
		lines.Observe(v)
	}

	rt.HTMStats().Publish(reg, labels...)
	rt.STMStats().Publish(reg, labels...)
	reg.Gauge("stm.memory_bytes", labels...).SetMax(rt.MemoryOverheadBytes())
}
