package interp_test

import (
	"errors"
	"testing"

	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/ir"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/mem"
)

// buildFusionProgram hand-assembles a loop hitting every superinstruction
// pattern: the loop head is a compare-and-branch, the body increments a
// global through a load-bin-store and the induction variable through a
// const-into-bin. Returns 10 iterations of g += 3, so exit code 30.
func buildFusionProgram(t testing.TB) *ir.Program {
	t.Helper()
	p := ir.NewProgram()
	p.AddGlobal("g", 8, nil)
	f := &ir.Func{Name: "main", NumRegs: 8}
	b0 := f.NewBlock("entry")
	b0.Instrs = []ir.Instr{
		{Op: ir.OpGlobalAddr, Dst: 0, Name: "g"},
		{Op: ir.OpConst, Dst: 1, Imm: 0},
		{Op: ir.OpConst, Dst: 2, Imm: 10},
		{Op: ir.OpJmp, Then: 1},
	}
	b1 := f.NewBlock("head") // fuses to cmp+br
	b1.Instrs = []ir.Instr{
		{Op: ir.OpBin, Dst: 3, A: 1, B: 2, Bin: ir.BinLt},
		{Op: ir.OpBr, A: 3, Then: 2, Else: 3},
	}
	b2 := f.NewBlock("body") // fuses to load-bin-store and const+bin
	b2.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: 6, Imm: 3},
		{Op: ir.OpLoad, Dst: 4, A: 0, Width: 8},
		{Op: ir.OpBin, Dst: 5, A: 4, B: 6, Bin: ir.BinAdd},
		{Op: ir.OpStore, A: 0, B: 5, Width: 8},
		{Op: ir.OpConst, Dst: 7, Imm: 1},
		{Op: ir.OpBin, Dst: 1, A: 1, B: 7, Bin: ir.BinAdd},
		{Op: ir.OpJmp, Then: 1},
	}
	b3 := f.NewBlock("exit")
	b3.Instrs = []ir.Instr{
		{Op: ir.OpLoad, Dst: 4, A: 0, Width: 8},
		{Op: ir.OpRet, A: 4},
	}
	p.AddFunc(f)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// newBackendPair builds a tree-walker machine and a bytecode machine for
// the same program (the bytecode one runs a deep copy so the two address
// spaces are fully independent; the layout is deterministic, so addresses
// and behaviour coincide).
func newBackendPair(t testing.TB, prog *ir.Program, rtT, rtB interp.Runtime) (*interp.Machine, *interp.Machine) {
	t.Helper()
	mt, err := interp.New(prog, libsim.New(mem.NewSpace()), rtT)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := interp.New(prog.Clone(), libsim.New(mem.NewSpace()), rtB)
	if err != nil {
		t.Fatal(err)
	}
	if err := interp.UseBytecode(mb); err != nil {
		t.Fatal(err)
	}
	if mt.BackendName() != "tree" || mb.BackendName() != "bytecode" {
		t.Fatalf("backend names = %q/%q", mt.BackendName(), mb.BackendName())
	}
	return mt, mb
}

func compareMachines(t *testing.T, stage string, mt, mb *interp.Machine) {
	t.Helper()
	if mt.Steps != mb.Steps || mt.Cycles != mb.Cycles {
		t.Fatalf("%s: steps/cycles diverged: tree %d/%d, bytecode %d/%d",
			stage, mt.Steps, mt.Cycles, mb.Steps, mb.Cycles)
	}
	if mt.Depth() != mb.Depth() || mt.CurrentFunc() != mb.CurrentFunc() {
		t.Fatalf("%s: stack diverged: tree %d@%s, bytecode %d@%s",
			stage, mt.Depth(), mt.CurrentFunc(), mb.Depth(), mb.CurrentFunc())
	}
	if mt.Exited() != mb.Exited() || mt.ExitCode() != mb.ExitCode() {
		t.Fatalf("%s: exit diverged: tree %v/%d, bytecode %v/%d",
			stage, mt.Exited(), mt.ExitCode(), mb.Exited(), mb.ExitCode())
	}
}

func compareOutcomes(t *testing.T, stage string, ot, ob interp.Outcome) {
	t.Helper()
	if ot.Kind != ob.Kind || ot.Code != ob.Code {
		t.Fatalf("%s: outcomes diverged: tree %v/%d, bytecode %v/%d",
			stage, ot.Kind, ot.Code, ob.Kind, ob.Code)
	}
	if (ot.Trap == nil) != (ob.Trap == nil) {
		t.Fatalf("%s: trap presence diverged", stage)
	}
	if ot.Trap != nil && (ot.Trap.Code != ob.Trap.Code || ot.Trap.Addr != ob.Trap.Addr || ot.Trap.PC != ob.Trap.PC) {
		t.Fatalf("%s: traps diverged: tree %v, bytecode %v", stage, ot.Trap, ob.Trap)
	}
}

// TestBytecodeLockstepFusionProgram single-steps both backends through the
// fusion-heavy program: with a budget of one instruction per Run call,
// every stop lands mid-superinstruction somewhere, so this exercises both
// the mid-fusion budget stop and the source-level resume path.
func TestBytecodeLockstepFusionProgram(t *testing.T) {
	for _, quantum := range []int64{1, 2, 3, 7} {
		prog := buildFusionProgram(t)
		mt, mb := newBackendPair(t, prog, nil, nil)
		for i := 0; i < 10_000; i++ {
			ot := mt.Run(quantum)
			ob := mb.Run(quantum)
			compareOutcomes(t, "lockstep", ot, ob)
			compareMachines(t, "lockstep", mt, mb)
			if ot.Kind != interp.OutStepLimit {
				if ot.Kind != interp.OutExited {
					t.Fatalf("quantum %d: unexpected outcome %v", quantum, ot.Kind)
				}
				break
			}
		}
		if !mt.Exited() || mt.ExitCode() != 30 {
			t.Fatalf("quantum %d: tree exit = %v/%d, want 30", quantum, mt.Exited(), mt.ExitCode())
		}
	}
}

// TestBytecodeSnapshotRestoreInsideFusedRegion stops both backends after
// every possible instruction count, snapshots (the bytecode machine's
// position may be in the middle of a fused region), runs a few more
// instructions, restores, and completes. Positions, costs and results
// must track the tree-walker through the whole cycle.
func TestBytecodeSnapshotRestoreInsideFusedRegion(t *testing.T) {
	// Total step count of the program, measured on the tree-walker.
	ref, err := interp.New(buildFusionProgram(t), libsim.New(mem.NewSpace()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out := ref.Run(0); out.Kind != interp.OutExited {
		t.Fatalf("reference run: %v", out.Kind)
	}
	total := ref.Steps

	for k := int64(1); k < total; k++ {
		prog := buildFusionProgram(t)
		mt, mb := newBackendPair(t, prog, nil, nil)
		compareOutcomes(t, "prefix", mt.Run(k), mb.Run(k))
		compareMachines(t, "prefix", mt, mb)
		st, sb := mt.Snapshot(), mb.Snapshot()
		compareOutcomes(t, "overrun", mt.Run(3), mb.Run(3))
		mt.Restore(st)
		mb.Restore(sb)
		compareMachines(t, "restored", mt, mb)
		compareOutcomes(t, "finish", mt.Run(0), mb.Run(0))
		compareMachines(t, "finish", mt, mb)
		// Note: the exit code may exceed 30 — Restore rewinds frames, not
		// memory (memory rollback is the recovery runtime's job), so the
		// overrun's store to g can survive. What matters here is that both
		// backends agree bit-for-bit, which compareMachines enforced.
		if !mt.Exited() {
			t.Fatalf("k=%d: did not run to completion", k)
		}
	}
}

// tickCountRT counts runtime ticks and reports TickLive=true, forcing the
// bytecode backend onto its per-instruction tick path (coordinates synced
// around every tick). Tick counts must then match the tree-walker exactly.
type tickCountRT struct {
	scriptRT
	ticks int64
}

func (s *tickCountRT) TickLive() bool { return true }

func (s *tickCountRT) Tick(m *interp.Machine, n int64) error {
	s.ticks += n
	return nil
}

// TestBytecodeGateDispatchBothVariants drives the hand-built gate program
// (txend + lib + gate with HTM/STM continuation clones) through both
// backends for each gate decision, comparing the full runtime event
// sequence, tick counts, costs and results.
func TestBytecodeGateDispatchBothVariants(t *testing.T) {
	cases := []struct {
		name    string
		variant int64
		inject  bool
	}{
		{"htm", ir.TxHTM, false},
		{"stm", ir.TxSTM, false},
		{"inject-stm", ir.TxHTM, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rtT := &tickCountRT{scriptRT: scriptRT{variant: tc.variant, inject: tc.inject}}
			rtB := &tickCountRT{scriptRT: scriptRT{variant: tc.variant, inject: tc.inject}}
			mt, mb := newBackendPair(t, buildGateProgram(t), rtT, rtB)
			compareOutcomes(t, tc.name, mt.Run(1000), mb.Run(1000))
			compareMachines(t, tc.name, mt, mb)
			assertEvents(t, rtB.events, rtT.events)
			if rtT.ticks != rtB.ticks {
				t.Errorf("tick counts diverged: tree %d, bytecode %d", rtT.ticks, rtB.ticks)
			}
			vt, _ := mt.Space.Load(mt.GlobalAddr("g"), 8)
			vb, _ := mb.Space.Load(mb.GlobalAddr("g"), 8)
			if vt != vb {
				t.Errorf("global diverged: tree %d, bytecode %d", vt, vb)
			}
		})
	}
}

// TestBytecodeGateLockstep single-steps the gate program under both
// variants: gates, txbegin/txend and libcalls must deliver the same event
// stream even when every Run call carries a one-instruction budget.
func TestBytecodeGateLockstep(t *testing.T) {
	for _, variant := range []int64{ir.TxHTM, ir.TxSTM} {
		rtT := &scriptRT{variant: variant}
		rtB := &scriptRT{variant: variant}
		mt, mb := newBackendPair(t, buildGateProgram(t), rtT, rtB)
		for i := 0; i < 1000; i++ {
			ot := mt.Run(1)
			ob := mb.Run(1)
			compareOutcomes(t, "gate-lockstep", ot, ob)
			compareMachines(t, "gate-lockstep", mt, mb)
			if ot.Kind != interp.OutStepLimit {
				break
			}
		}
		assertEvents(t, rtB.events, rtT.events)
	}
}

// TestBytecodeDivZeroTrapPosition checks that a trap raised from inside
// bytecode execution reports the same user-visible PC string as the
// tree-walker (coordinates must be synced before trap construction).
func TestBytecodeDivZeroTrapPosition(t *testing.T) {
	p := ir.NewProgram()
	f := &ir.Func{Name: "main", NumRegs: 3}
	b := f.NewBlock("entry")
	b.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: 0, Imm: 7},
		{Op: ir.OpConst, Dst: 1, Imm: 0},
		{Op: ir.OpBin, Dst: 2, A: 0, B: 1, Bin: ir.BinDiv},
		{Op: ir.OpRet, A: 2},
	}
	p.AddFunc(f)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	mt, mb := newBackendPair(t, p, nil, nil)
	ot, ob := mt.Run(0), mb.Run(0)
	compareOutcomes(t, "divzero", ot, ob)
	if ot.Trap == nil || ot.Trap.Code != ir.TrapDivZero {
		t.Fatalf("trap = %v, want div-zero", ot.Trap)
	}
}

// TestThreadArgOverflowTraps is the regression test for push silently
// truncating arguments: spawning a thread entry with more arguments than
// the function has registers must fail-stop with TrapBadCall instead of
// running with a dropped argument.
func TestThreadArgOverflowTraps(t *testing.T) {
	p := ir.NewProgram()
	f := &ir.Func{Name: "main", NumRegs: 1}
	b := f.NewBlock("entry")
	b.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: 0, Imm: 0},
		{Op: ir.OpRet, A: 0},
	}
	p.AddFunc(f)
	w := &ir.Func{Name: "worker", Params: 0, NumRegs: 0}
	wb := w.NewBlock("entry")
	wb.Instrs = []ir.Instr{{Op: ir.OpRet, A: -1}}
	p.AddFunc(w)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := interp.New(p, libsim.New(mem.NewSpace()), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = interp.NewThread(m, nil, p.Funcs["worker"], []int64{42}, 1)
	if err == nil {
		t.Fatal("NewThread accepted more args than the entry has registers")
	}
	var trap *interp.Trap
	if !errors.As(err, &trap) || trap.Code != ir.TrapBadCall {
		t.Fatalf("err = %v, want TrapBadCall", err)
	}
}
