package interp_test

import (
	"testing"

	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/ir"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/mem"
)

// buildHotLoop returns a program spinning a fusable arithmetic loop over a
// global counter: the dispatch-bound shape the superinstruction set
// targets (compare-and-branch, load-op-store, const-into-bin).
func buildHotLoop(iters int64) *ir.Program {
	p := ir.NewProgram()
	p.AddGlobal("g", 8, nil)
	f := &ir.Func{Name: "main", NumRegs: 8}
	b0 := f.NewBlock("entry")
	b0.Instrs = []ir.Instr{
		{Op: ir.OpGlobalAddr, Dst: 0, Name: "g"},
		{Op: ir.OpConst, Dst: 1, Imm: 0},
		{Op: ir.OpConst, Dst: 2, Imm: iters},
		{Op: ir.OpJmp, Then: 1},
	}
	b1 := f.NewBlock("head")
	b1.Instrs = []ir.Instr{
		{Op: ir.OpBin, Dst: 3, A: 1, B: 2, Bin: ir.BinLt},
		{Op: ir.OpBr, A: 3, Then: 2, Else: 3},
	}
	b2 := f.NewBlock("body")
	b2.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: 6, Imm: 3},
		{Op: ir.OpLoad, Dst: 4, A: 0, Width: 8},
		{Op: ir.OpBin, Dst: 5, A: 4, B: 6, Bin: ir.BinAdd},
		{Op: ir.OpStore, A: 0, B: 5, Width: 8},
		{Op: ir.OpConst, Dst: 7, Imm: 1},
		{Op: ir.OpBin, Dst: 1, A: 1, B: 7, Bin: ir.BinAdd},
		{Op: ir.OpJmp, Then: 1},
	}
	b3 := f.NewBlock("exit")
	b3.Instrs = []ir.Instr{
		{Op: ir.OpLoad, Dst: 4, A: 0, Width: 8},
		{Op: ir.OpRet, A: 4},
	}
	p.AddFunc(f)
	return p
}

func benchDispatch(b *testing.B, bytecode bool) {
	prog := buildHotLoop(200_000)
	if err := prog.Validate(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := interp.New(prog.Clone(), libsim.New(mem.NewSpace()), nil)
		if err != nil {
			b.Fatal(err)
		}
		if bytecode {
			if err := interp.UseBytecode(m); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if out := m.Run(0); out.Kind != interp.OutExited {
			b.Fatalf("outcome %v", out.Kind)
		}
	}
}

func BenchmarkDispatchTree(b *testing.B)     { benchDispatch(b, false) }
func BenchmarkDispatchBytecode(b *testing.B) { benchDispatch(b, true) }
