package interp_test

import (
	"fmt"
	"testing"

	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/ir"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/mem"
)

// scriptRT is a scripted runtime recording the exact sequence of events
// the machine delivers — the machine↔runtime contract in isolation.
type scriptRT struct {
	interp.Direct
	events  []string
	variant int64
	inject  bool
}

func (s *scriptRT) LibCall(m *interp.Machine, name string, args []int64, site int) (int64, error) {
	s.events = append(s.events, fmt.Sprintf("lib:%s@%d", name, site))
	return m.OS.Call(name, args)
}

func (s *scriptRT) Gate(m *interp.Machine, site int, snap *interp.Snapshot) (int64, bool, int64) {
	s.events = append(s.events, fmt.Sprintf("gate:%d", site))
	if snap == nil {
		s.events = append(s.events, "gate:nil-snapshot")
	}
	if s.inject {
		return ir.TxSTM, true, -99
	}
	return s.variant, false, 0
}

func (s *scriptRT) TxBegin(m *interp.Machine, site int, variant int64) error {
	s.events = append(s.events, fmt.Sprintf("txbegin:%d:%d", site, variant))
	return nil
}

func (s *scriptRT) TxEnd(m *interp.Machine) error {
	s.events = append(s.events, "txend")
	return nil
}

func (s *scriptRT) Store(m *interp.Machine, addr, val int64, width int, stm bool) error {
	s.events = append(s.events, fmt.Sprintf("store:stm=%v", stm))
	return m.Space.Store(addr, val, width)
}

func (s *scriptRT) RegSave(m *interp.Machine) {
	s.events = append(s.events, "regsave")
}

func (s *scriptRT) Variant() int64 { return s.variant }

// buildGateProgram hand-assembles the instrumented shape the transform
// pass emits: txend + libcall + gate, HTM/STM continuation clones.
func buildGateProgram(t *testing.T) *ir.Program {
	t.Helper()
	p := ir.NewProgram()
	p.AddGlobal("g", 8, nil)
	f := &ir.Func{Name: "main", NumRegs: 4}

	b0 := f.NewBlock("entry") // txend, lib, gate
	b0.Instrs = []ir.Instr{
		{Op: ir.OpTxEnd},
		{Op: ir.OpLib, Dst: 0, Name: "getpid", Site: 1},
		{Op: ir.OpGate, Site: 1, Dst: 0, Then: 1, Else: 2},
	}
	b1 := f.NewBlock("cont") // HTM clone
	b1.Variant = ir.TxHTM
	b1.Counterpart = 2
	b1.Instrs = []ir.Instr{
		{Op: ir.OpRegSave},
		{Op: ir.OpTxBegin, Site: 1, Imm: ir.TxHTM},
		{Op: ir.OpGlobalAddr, Dst: 1, Name: "g"},
		{Op: ir.OpStore, A: 1, B: 0, Width: 8},
		{Op: ir.OpTxEnd},
		{Op: ir.OpRet, A: 0},
	}
	b2 := f.NewBlock("cont.stm") // STM clone
	b2.Variant = ir.TxSTM
	b2.Counterpart = 1
	b2.Instrs = []ir.Instr{
		{Op: ir.OpRegSave},
		{Op: ir.OpTxBegin, Site: 1, Imm: ir.TxSTM},
		{Op: ir.OpGlobalAddr, Dst: 1, Name: "g"},
		{Op: ir.OpStmStore, A: 1, B: 0, Width: 8},
		{Op: ir.OpTxEnd},
		{Op: ir.OpRet, A: 0},
	}
	f.Cloned = true
	f.EntryHTM = 0
	f.EntrySTM = 0
	p.AddFunc(f)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func runScripted(t *testing.T, rt *scriptRT) *interp.Machine {
	t.Helper()
	prog := buildGateProgram(t)
	o := libsim.New(mem.NewSpace())
	m, err := interp.New(prog, o, rt)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Run(1000)
	if out.Kind != interp.OutExited {
		t.Fatalf("outcome = %v", out.Kind)
	}
	return m
}

func TestMachineDeliversHTMSequence(t *testing.T) {
	rt := &scriptRT{variant: ir.TxHTM}
	m := runScripted(t, rt)
	// The final txend is the machine's commit-pending-transaction-at-exit.
	want := []string{
		"txend", "lib:getpid@1", "gate:1",
		"regsave", "txbegin:1:1", "store:stm=false", "txend", "txend",
	}
	assertEvents(t, rt.events, want)
	if m.ExitCode() != m.OS.Pid() {
		t.Errorf("exit = %d, want pid %d", m.ExitCode(), m.OS.Pid())
	}
}

func TestMachineDeliversSTMSequence(t *testing.T) {
	rt := &scriptRT{variant: ir.TxSTM}
	runScripted(t, rt)
	want := []string{
		"txend", "lib:getpid@1", "gate:1",
		"regsave", "txbegin:1:2", "store:stm=true", "txend", "txend",
	}
	assertEvents(t, rt.events, want)
}

func TestGateInjectionOverwritesReturnRegister(t *testing.T) {
	rt := &scriptRT{variant: ir.TxHTM, inject: true}
	m := runScripted(t, rt)
	// The gate returned inject=-99 and variant STM: the STM clone runs
	// and the libcall's register carries the injected value to ret.
	if m.ExitCode() != -99 {
		t.Fatalf("exit = %d, want injected -99", m.ExitCode())
	}
	assertEvents(t, rt.events, []string{
		"txend", "lib:getpid@1", "gate:1",
		"regsave", "txbegin:1:2", "store:stm=true", "txend", "txend",
	})
	// And the injected value was stored to the global through the tx.
	v, err := m.Space.Load(m.GlobalAddr("g"), 8)
	if err != nil || v != -99 {
		t.Fatalf("global = %d, %v", v, err)
	}
}

func assertEvents(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestMachineAccessors(t *testing.T) {
	prog := buildGateProgram(t)
	o := libsim.New(mem.NewSpace())
	m, err := interp.New(prog, o, &scriptRT{variant: ir.TxHTM})
	if err != nil {
		t.Fatal(err)
	}
	if m.Exited() {
		t.Error("Exited before run")
	}
	if m.Depth() != 1 {
		t.Errorf("Depth = %d, want 1", m.Depth())
	}
	if m.GlobalAddr("g") == 0 {
		t.Error("GlobalAddr(g) = 0")
	}
	if m.GlobalAddr("nope") != 0 {
		t.Error("GlobalAddr(nope) != 0")
	}
	m.Run(0)
	if !m.Exited() {
		t.Error("not Exited after run")
	}
	// Running an exited machine is a no-op returning the exit outcome.
	out := m.Run(0)
	if out.Kind != interp.OutExited {
		t.Errorf("re-run outcome = %v", out.Kind)
	}
}

func TestTrapErrorString(t *testing.T) {
	tr := &interp.Trap{Code: ir.TrapBadAccess, Addr: 0x40, PC: "f.b1.2"}
	s := tr.Error()
	if s == "" || len(s) < 10 {
		t.Errorf("Trap.Error() = %q", s)
	}
	for _, k := range []interp.OutcomeKind{interp.OutExited, interp.OutTrapped, interp.OutBlocked, interp.OutStepLimit, interp.OutcomeKind(42)} {
		if k.String() == "" {
			t.Errorf("OutcomeKind(%d).String() empty", k)
		}
	}
}

// TestNarrowAccessWidths exercises the 2- and 4-byte load/store paths the
// mini-C frontend never emits (it uses 1 and 8).
func TestNarrowAccessWidths(t *testing.T) {
	p := ir.NewProgram()
	p.AddGlobal("g", 16, nil)
	f := &ir.Func{Name: "main", NumRegs: 6}
	b := f.NewBlock("entry")
	b.Instrs = []ir.Instr{
		{Op: ir.OpGlobalAddr, Dst: 0, Name: "g"},
		{Op: ir.OpConst, Dst: 1, Imm: 0x12345678},
		{Op: ir.OpStore, A: 0, B: 1, Width: 4},
		{Op: ir.OpConst, Dst: 2, Imm: 0xBEEF},
		{Op: ir.OpStore, A: 0, B: 2, Imm: 8, Width: 2},
		{Op: ir.OpLoad, Dst: 3, A: 0, Width: 4},
		{Op: ir.OpLoad, Dst: 4, A: 0, Imm: 8, Width: 2},
		{Op: ir.OpBin, Dst: 5, A: 3, B: 4, Bin: ir.BinXor},
		{Op: ir.OpRet, A: 5},
	}
	p.AddFunc(f)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	o := libsim.New(mem.NewSpace())
	m, err := interp.New(p, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Run(100)
	if out.Kind != interp.OutExited {
		t.Fatalf("outcome = %v", out.Kind)
	}
	if m.ExitCode() != 0x12345678^0xBEEF {
		t.Fatalf("exit = %#x", m.ExitCode())
	}
}
