package interp_test

import (
	"strings"
	"testing"

	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/ir"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/mem"
	"github.com/firestarter-go/firestarter/internal/minic"
)

// run compiles and runs a mini-C program to completion under the Direct
// runtime, returning the exit code and the OS for further inspection.
func run(t *testing.T, src string) (int64, *libsim.OS, interp.Outcome) {
	t.Helper()
	prog, err := minic.Compile(src, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	o := libsim.New(mem.NewSpace())
	m, err := interp.New(prog, o, nil)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	out := m.Run(5_000_000)
	return m.ExitCode(), o, out
}

func expectExit(t *testing.T, src string, want int64) *libsim.OS {
	t.Helper()
	code, o, out := run(t, src)
	if out.Kind != interp.OutExited {
		t.Fatalf("outcome = %v (trap %+v), want exit", out.Kind, out.Trap)
	}
	if code != want {
		t.Fatalf("exit code = %d, want %d", code, want)
	}
	return o
}

func TestReturnConstant(t *testing.T) {
	expectExit(t, `int main() { return 42; }`, 42)
}

func TestArithmetic(t *testing.T) {
	expectExit(t, `
int main() {
	int a = 7;
	int b = 3;
	return a * b + a / b - a % b + (a << 1) - (a >> 1) + (a ^ b) + (a & b) + (a | b);
}`, 21+2-1+14-3+4+3+7)
}

func TestComparisonAndLogic(t *testing.T) {
	expectExit(t, `
int main() {
	int x = 5;
	if (x > 3 && x < 10) { return 1; }
	return 0;
}`, 1)
	expectExit(t, `
int main() {
	int x = 5;
	if (x < 3 || x == 5) { return 1; }
	return 0;
}`, 1)
}

func TestShortCircuitSkipsRHS(t *testing.T) {
	// The RHS would trap (divide by zero) if evaluated.
	expectExit(t, `
int main() {
	int zero = 0;
	if (zero != 0 && 1 / zero) { return 9; }
	if (1 == 1 || 1 / zero) { return 7; }
	return 0;
}`, 7)
}

func TestWhileAndFor(t *testing.T) {
	expectExit(t, `
int main() {
	int sum = 0;
	for (int i = 1; i <= 10; i++) { sum += i; }
	int j = 0;
	while (j < 5) { sum += 100; j++; }
	return sum;
}`, 55+500)
}

func TestBreakContinue(t *testing.T) {
	expectExit(t, `
int main() {
	int sum = 0;
	for (int i = 0; i < 100; i++) {
		if (i % 2 == 0) { continue; }
		if (i > 10) { break; }
		sum += i;
	}
	return sum;
}`, 1+3+5+7+9)
}

func TestFunctionsAndRecursion(t *testing.T) {
	expectExit(t, `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }`, 144)
}

func TestGlobalsAndArrays(t *testing.T) {
	expectExit(t, `
int counter = 5;
int table[10];
int main() {
	counter = counter + 1;
	for (int i = 0; i < 10; i++) { table[i] = i * i; }
	return counter * 100 + table[7];
}`, 649)
}

func TestLocalArraysAndPointers(t *testing.T) {
	expectExit(t, `
int main() {
	int buf[8];
	int *p = buf;
	for (int i = 0; i < 8; i++) { p[i] = i + 1; }
	int *q = buf + 3;
	return *q + q[1] + (q - p);
}`, 4+5+3)
}

func TestCharBuffersAndStrings(t *testing.T) {
	o := expectExit(t, `
int main() {
	char buf[32];
	strcpy(buf, "hello");
	buf[5] = '!';
	buf[6] = 0;
	puts(buf);
	return strlen(buf);
}`, 6)
	if got := o.Stdout(); got != "hello!\n" {
		t.Fatalf("stdout = %q", got)
	}
}

func TestStructsOnHeap(t *testing.T) {
	expectExit(t, `
struct point {
	int x;
	int y;
	char tag;
};
int main() {
	struct point *p = malloc(sizeof(struct point));
	if (!p) { return -1; }
	p->x = 11;
	p->y = 22;
	p->tag = 'z';
	int s = p->x + p->y + p->tag;
	free(p);
	return s - 'z';
}`, 33)
}

func TestStructSizeofPacking(t *testing.T) {
	expectExit(t, `
struct conn {
	int fd;
	char *buf;
	int len;
	char name[16];
};
int main() { return sizeof(struct conn); }`, 8+8+8+16)
}

func TestAssignmentAsExpression(t *testing.T) {
	// The C idiom the paper's Listing 1 depends on.
	expectExit(t, `
int main() {
	int rc;
	if ((rc = socket()) == -1) { return 99; }
	return rc;
}`, 3) // first app fd is 3
}

func TestCompoundAssignAndIncDec(t *testing.T) {
	expectExit(t, `
int main() {
	int x = 10;
	x += 5; x -= 2; x *= 3; x /= 2; x %= 11;
	int arr[4];
	arr[0] = 0;
	arr[0]++;
	arr[0]++;
	arr[0]--;
	return x * 10 + arr[0];
}`, 81) // ((10+5-2)*3/2)%11 = 8 → 8*10 + 1
}

func TestCompoundAssignValue(t *testing.T) {
	// 10+5=15; 15-2=13; 13*3=39; 39/2=19; 19%11=8 → 8*10+1 = 81.
	expectExit(t, `
int main() {
	int x = 10;
	x += 5; x -= 2; x *= 3; x /= 2; x %= 11;
	return x;
}`, 8)
}

func TestPointerIncrementScales(t *testing.T) {
	expectExit(t, `
int main() {
	int buf[4];
	buf[0] = 1; buf[1] = 2; buf[2] = 3; buf[3] = 4;
	int *p = buf;
	p++;
	p++;
	return *p;
}`, 3)
}

func TestNullDereferenceTraps(t *testing.T) {
	_, _, out := run(t, `
int main() {
	int *p = NULL;
	return *p;
}`)
	if out.Kind != interp.OutTrapped || out.Code != ir.TrapBadAccess {
		t.Fatalf("outcome = %+v, want bad-access trap", out)
	}
}

func TestAssertFailureTraps(t *testing.T) {
	_, _, out := run(t, `
int main() {
	int x = 3;
	assert(x == 4);
	return 0;
}`)
	if out.Kind != interp.OutTrapped || out.Code != ir.TrapAssert {
		t.Fatalf("outcome = %+v, want assert trap", out)
	}
}

func TestDivideByZeroTraps(t *testing.T) {
	_, _, out := run(t, `
int main() {
	int z = 0;
	return 5 / z;
}`)
	if out.Kind != interp.OutTrapped || out.Code != ir.TrapDivZero {
		t.Fatalf("outcome = %+v, want div-zero trap", out)
	}
}

func TestUseAfterFreeCorruptionTraps(t *testing.T) {
	_, _, out := run(t, `
int main() {
	int *p = malloc(64);
	free(p);
	free(p);
	return 0;
}`)
	if out.Kind != interp.OutTrapped {
		t.Fatalf("outcome = %+v, want trap (double free)", out)
	}
}

func TestStackOverflowTraps(t *testing.T) {
	_, _, out := run(t, `
int deep(int n) {
	char pad[4096];
	pad[0] = n;
	return deep(n + 1) + pad[0];
}
int main() { return deep(0); }`)
	if out.Kind != interp.OutTrapped || out.Code != ir.TrapBadAccess {
		t.Fatalf("outcome = %+v, want stack-overflow trap", out)
	}
}

func TestErrnoVisibleToProgram(t *testing.T) {
	// Bind the same port twice; the second must fail with EADDRINUSE,
	// mirroring the paper's Listing 1 error handling.
	expectExit(t, `
int main() {
	int s1 = socket();
	int s2 = socket();
	if (bind(s1, 8080) == -1) { return 1; }
	if (bind(s2, 8080) == -1) {
		if (errno() == 98) { return 50; }
		return 2;
	}
	return 3;
}`, 50)
}

func TestServerAcceptLoopWithBlocking(t *testing.T) {
	src := `
int main() {
	int s = socket();
	setsockopt(s, 2, 1);
	if (bind(s, 80) == -1) { return 1; }
	if (listen(s, 16) == -1) { return 2; }
	int ep = epoll_create();
	epoll_ctl(ep, 1, s);
	int served = 0;
	char buf[256];
	int events[8];
	while (served < 3) {
		int n = epoll_wait(ep, events, 8);
		if (n <= 0) { continue; }
		int fd = accept(s);
		if (fd == -1) { continue; }
		int got = read(fd, buf, 256);
		if (got > 0) {
			write(fd, buf, got);
		}
		close(fd);
		served++;
	}
	return served;
}`
	prog, err := minic.Compile(src, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	o := libsim.New(mem.NewSpace())
	m, err := interp.New(prog, o, nil)
	if err != nil {
		t.Fatal(err)
	}

	// First run: server sets up and blocks in epoll_wait.
	out := m.Run(1_000_000)
	if out.Kind != interp.OutBlocked {
		t.Fatalf("first run outcome = %v, want blocked", out.Kind)
	}

	// Drive three echo requests through it.
	for i := 0; i < 3; i++ {
		c := o.Connect(80)
		if c == nil {
			t.Fatalf("connect %d failed", i)
		}
		c.ClientDeliver([]byte("ping"))
		out = m.Run(1_000_000)
		if i < 2 && out.Kind != interp.OutBlocked {
			t.Fatalf("run %d outcome = %v, want blocked", i, out.Kind)
		}
		if got := string(c.ClientTake()); got != "ping" {
			t.Fatalf("echo %d = %q", i, got)
		}
	}
	if out.Kind != interp.OutExited || m.ExitCode() != 3 {
		t.Fatalf("final outcome = %v code=%d", out.Kind, m.ExitCode())
	}
}

func TestFileServing(t *testing.T) {
	src := `
int main() {
	char path[32];
	strcpy(path, "/www/index.html");
	int fd = open(path, 0);
	if (fd == -1) { return 1; }
	int st[2];
	if (fstat(fd, st) == -1) { return 2; }
	int size = st[0];
	char *body = malloc(size + 1);
	if (!body) { return 3; }
	int got = pread(fd, body, size, 0);
	close(fd);
	if (got != size) { return 4; }
	body[size] = 0;
	puts(body);
	free(body);
	return size;
}`
	prog, err := minic.Compile(src, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	o := libsim.New(mem.NewSpace())
	o.FS().Add("/www/index.html", []byte("<html>ok</html>"))
	m, err := interp.New(prog, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Run(1_000_000)
	if out.Kind != interp.OutExited || m.ExitCode() != 15 {
		t.Fatalf("outcome = %v code=%d trap=%+v", out.Kind, m.ExitCode(), out.Trap)
	}
	if !strings.Contains(o.Stdout(), "<html>ok</html>") {
		t.Fatalf("stdout = %q", o.Stdout())
	}
}

func TestCyclesAccumulate(t *testing.T) {
	prog, err := minic.Compile(`int main() { int s = 0; for (int i = 0; i < 1000; i++) { s += i; } return 0; }`,
		minic.Config{})
	if err != nil {
		t.Fatal(err)
	}
	o := libsim.New(mem.NewSpace())
	m, err := interp.New(prog, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(0)
	if m.Cycles < 1000 || m.Steps < 1000 {
		t.Fatalf("cycles = %d steps = %d, want >= 1000", m.Cycles, m.Steps)
	}
}

func TestStepLimit(t *testing.T) {
	prog, err := minic.Compile(`int main() { while (1) { } return 0; }`, minic.Config{})
	if err != nil {
		t.Fatal(err)
	}
	o := libsim.New(mem.NewSpace())
	m, err := interp.New(prog, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Run(10_000)
	if out.Kind != interp.OutStepLimit {
		t.Fatalf("outcome = %v, want step-limit", out.Kind)
	}
	// Resumable: running again hits the limit again, no corruption.
	out = m.Run(10_000)
	if out.Kind != interp.OutStepLimit {
		t.Fatalf("second outcome = %v, want step-limit", out.Kind)
	}
}

func TestSnapshotRestore(t *testing.T) {
	prog, err := minic.Compile(`
int g = 0;
int main() {
	g = 1;
	g = 2;
	return g;
}`, minic.Config{})
	if err != nil {
		t.Fatal(err)
	}
	o := libsim.New(mem.NewSpace())
	m, err := interp.New(prog, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	m.Run(3)
	m.Restore(snap)
	out := m.Run(0)
	if out.Kind != interp.OutExited || m.ExitCode() != 2 {
		t.Fatalf("after restore: %v code=%d", out.Kind, m.ExitCode())
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`int main() { return x; }`, "undefined variable"},
		{`int main() { frobnicate(1); return 0; }`, "not a known library call"},
		{`int f(int a) { return a; } int main() { return f(1, 2); }`, "want 1"},
		{`int main() { break; }`, "break outside loop"},
		{`int main() { int x = 1; int x = 2; return x; }`, "redeclared"},
		{`int main() { struct nope *p = NULL; return p->q; }`, "undefined struct"},
		{`void main() { return 1; }`, "void function"},
		{`int main() { int a = 1; return *a; }`, "dereference non-pointer"},
		{`int x; int main() { return &x == &x; }`, ""}, // valid: globals are addressable
	}
	for _, tc := range cases {
		_, err := minic.Compile(tc.src, minic.Config{KnownLib: libsim.Known})
		if tc.want == "" {
			if err != nil {
				t.Errorf("Compile(%q) = %v, want nil", tc.src, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Compile(%q) err = %v, want contains %q", tc.src, err, tc.want)
		}
	}
}

func TestGlobalInitializers(t *testing.T) {
	expectExit(t, `
int answer = 42;
int negative = -7;
char greeting[6] = "hi";
int main() { return answer + negative + greeting[0]; }`, 42-7+'h')
}

func TestNestedIfElseChains(t *testing.T) {
	src := `
int classify(int x) {
	if (x < 0) { return 1; }
	else if (x == 0) { return 2; }
	else if (x < 10) { return 3; }
	else { return 4; }
}
int main() {
	return classify(-5) * 1000 + classify(0) * 100 + classify(5) * 10 + classify(50);
}`
	expectExit(t, src, 1234)
}

func TestAddressOfGlobalThroughPointer(t *testing.T) {
	expectExit(t, `
int g = 10;
int bump(int *p) { *p = *p + 5; return *p; }
int main() { return bump(&g) + g; }`, 30)
}

func TestMemsetMemcpyFromProgram(t *testing.T) {
	expectExit(t, `
int main() {
	char a[16];
	char b[16];
	memset(a, 'x', 15);
	a[15] = 0;
	memcpy(b, a, 16);
	return strcmp(a, b) == 0 && strlen(b) == 15;
}`, 1)
}
