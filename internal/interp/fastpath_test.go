package interp

// White-box regression tests for the resolve-at-load fast path and the
// crash-path bugfixes: they need access to unexported machine state (sp,
// budget, frames), so they live inside the package.

import (
	"testing"

	"github.com/firestarter-go/firestarter/internal/ir"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/mem"
)

// leafFunc builds `name() { return ret; }` with the given frame size.
func leafFunc(name string, ret int64, frameSize int64) *ir.Func {
	f := &ir.Func{Name: name, NumRegs: 1, FrameSize: frameSize}
	b := f.NewBlock("entry")
	b.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: 0, Imm: ret},
		{Op: ir.OpRet, A: 0},
	}
	return f
}

func newTestMachine(t *testing.T, prog *ir.Program, rt Runtime) *Machine {
	t.Helper()
	m, err := New(prog, libsim.New(mem.NewSpace()), rt)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestUnknownCalleeTraps: an OpCall whose callee cannot be resolved must
// raise a simulated TrapBadCall, never nil-deref the host process. The
// program validates at load (so New succeeds) and is then sabotaged the
// way a buggy post-load mutation would.
func TestUnknownCalleeTraps(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddFunc(leafFunc("callee", 7, 0))
	main := &ir.Func{Name: "main", NumRegs: 1}
	mb := main.NewBlock("entry")
	mb.Instrs = []ir.Instr{
		{Op: ir.OpCall, Dst: 0, Name: "callee"},
		{Op: ir.OpRet, A: 0},
	}
	prog.AddFunc(main)

	m := newTestMachine(t, prog, nil)
	// Sabotage after load: point the call at a function that does not
	// exist and drop the resolution cache.
	call := &m.Prog.Funcs["main"].Blocks[0].Instrs[0]
	call.Name = "missing"
	call.Callee = nil

	out := m.Run(0)
	if out.Kind != OutTrapped {
		t.Fatalf("outcome = %v, want OutTrapped", out.Kind)
	}
	if out.Code != ir.TrapBadCall {
		t.Fatalf("trap code = %d, want TrapBadCall (%d)", out.Code, ir.TrapBadCall)
	}
}

// TestResolvedCallFastPath: after New, OpCall instructions carry direct
// *ir.Func pointers and OpGlobalAddr direct *ir.Global pointers.
func TestResolvedCallFastPath(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddGlobal("g", 8, nil)
	callee := leafFunc("callee", 3, 0)
	prog.AddFunc(callee)
	main := &ir.Func{Name: "main", NumRegs: 2}
	mb := main.NewBlock("entry")
	mb.Instrs = []ir.Instr{
		{Op: ir.OpGlobalAddr, Dst: 1, Name: "g"},
		{Op: ir.OpCall, Dst: 0, Name: "callee"},
		{Op: ir.OpRet, A: 0},
	}
	prog.AddFunc(main)

	m := newTestMachine(t, prog, nil)
	got := m.Prog.Funcs["main"].Blocks[0].Instrs
	if got[0].Global == nil || got[0].Global != m.Prog.Global("g") {
		t.Errorf("OpGlobalAddr not resolved to this program's global")
	}
	if got[1].Callee != m.Prog.Funcs["callee"] {
		t.Errorf("OpCall not resolved to this program's callee")
	}
	if out := m.Run(0); out.Kind != OutExited || out.Code != 3 {
		t.Fatalf("run = %+v, want exit 3", out)
	}
}

// TestReturnRestoresStackPointer: popping a frame must restore sp exactly.
// Frame sizes are chosen non-multiples of 16 so the old inexact
// `f.FP + f.Fn.FrameSize` exit path (which skipped the alignment fix-up)
// would leave sp drifted below mem.StackTop at program exit.
func TestReturnRestoresStackPointer(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddFunc(leafFunc("helper", 9, 8))
	main := &ir.Func{Name: "main", NumRegs: 1, FrameSize: 24}
	mb := main.NewBlock("entry")
	mb.Instrs = []ir.Instr{
		{Op: ir.OpCall, Dst: 0, Name: "helper"},
		{Op: ir.OpRet, A: 0},
	}
	prog.AddFunc(main)

	m := newTestMachine(t, prog, nil)
	mainFP := m.frames[0].FP

	// Run up to (but not past) main's ret: 2 steps in helper + the call.
	if out := m.Run(3); out.Kind != OutStepLimit {
		t.Fatalf("outcome = %v, want OutStepLimit", out.Kind)
	}
	if len(m.frames) != 1 {
		t.Fatalf("depth = %d after helper returned, want 1", len(m.frames))
	}
	if m.sp != mainFP {
		t.Errorf("sp after inner return = %#x, want caller FP %#x", m.sp, mainFP)
	}

	if out := m.Run(0); out.Kind != OutExited || out.Code != 9 {
		t.Fatalf("run = %+v, want exit 9", out)
	}
	if m.sp != mem.StackTop {
		t.Errorf("sp at exit = %#x, want mem.StackTop %#x (drift = %d bytes)",
			m.sp, int64(mem.StackTop), int64(mem.StackTop)-m.sp)
	}
}

// TestUnlimitedRunDoesNotTrackBudget: with maxSteps == 0 the machine must
// not count a budget down (the old code decremented it every step, which
// underflows int64 on very long runs). The budget field is only touched
// by limited runs.
func TestUnlimitedRunDoesNotTrackBudget(t *testing.T) {
	build := func() *Machine {
		prog := ir.NewProgram()
		main := &ir.Func{Name: "main", NumRegs: 2}
		b0 := main.NewBlock("entry")
		b0.Instrs = []ir.Instr{
			{Op: ir.OpConst, Dst: 0, Imm: 0},
			{Op: ir.OpJmp, Then: 1},
		}
		b1 := main.NewBlock("loop")
		b1.Instrs = []ir.Instr{
			{Op: ir.OpConst, Dst: 1, Imm: 1},
			{Op: ir.OpBin, Bin: ir.BinAdd, Dst: 0, A: 0, B: 1},
			{Op: ir.OpConst, Dst: 1, Imm: 50},
			{Op: ir.OpBin, Bin: ir.BinLt, Dst: 1, A: 0, B: 1},
			{Op: ir.OpBr, A: 1, Then: 1, Else: 2},
		}
		b2 := main.NewBlock("done")
		b2.Instrs = []ir.Instr{{Op: ir.OpRet, A: 0}}
		prog.AddFunc(main)
		return newTestMachine(t, prog, nil)
	}

	m := build()
	if out := m.Run(0); out.Kind != OutExited {
		t.Fatalf("outcome = %v, want OutExited", out.Kind)
	}
	if m.Steps < 100 {
		t.Fatalf("Steps = %d, want a few hundred (loop must actually run)", m.Steps)
	}
	if m.budget != 0 {
		t.Errorf("budget after unlimited run = %d, want 0 (untouched)", m.budget)
	}

	// A limited run still enforces its budget.
	m = build()
	if out := m.Run(10); out.Kind != OutStepLimit {
		t.Fatalf("outcome = %v, want OutStepLimit", out.Kind)
	}
	if m.Steps != 10 {
		t.Errorf("Steps after Run(10) = %d, want 10", m.Steps)
	}
}

// restoreRT restores a snapshot from *inside* LibCall, modelling the
// hazard documented at the OpLib handler: the machine must write the
// return register into the restored top frame, not through a stale frame
// pointer captured before the restore.
type restoreRT struct {
	Direct
	snap     *Snapshot
	kicks    int
	restored bool
	captured bool
	topFn    string
	topReg1  int64
}

func (r *restoreRT) LibCall(m *Machine, name string, args []int64, site int) (int64, error) {
	switch name {
	case "probe":
		if r.snap == nil {
			r.snap = m.Snapshot() // depth 2, positioned at this probe
		}
		return 5, nil
	case "kick":
		r.kicks++
		if r.kicks == 1 {
			m.Restore(r.snap) // depth 1 -> 2: the top frame changes
			r.restored = true
			return 99, nil
		}
		return 7, nil
	}
	return m.OS.Call(name, args)
}

// Tick fires right after the step in which the restore happened; it
// observes where the machine actually wrote the libcall's return value.
func (r *restoreRT) Tick(m *Machine, n int64) error {
	if r.restored && !r.captured {
		r.captured = true
		f := &m.frames[len(m.frames)-1]
		r.topFn = f.Fn.Name
		r.topReg1 = f.Regs[1]
	}
	return nil
}

// TestRestoreDuringLibCallWritesRestoredFrame is the regression test for
// the snapshot-restore-during-libcall hazard: a snapshot taken at depth 2
// is restored while a depth-1 libcall is in flight, so the frame the
// machine must write the return value into is a different stack slot than
// the one it dispatched from.
func TestRestoreDuringLibCallWritesRestoredFrame(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddGlobal("g", 8, nil)

	helper := &ir.Func{Name: "helper", NumRegs: 4}
	hb := helper.NewBlock("entry")
	hb.Instrs = []ir.Instr{
		{Op: ir.OpLib, Dst: 0, Name: "probe"},
		{Op: ir.OpGlobalAddr, Dst: 1, Name: "g"},
		{Op: ir.OpLoad, Dst: 2, A: 1, Width: 8},
		{Op: ir.OpConst, Dst: 3, Imm: 1},
		{Op: ir.OpBin, Bin: ir.BinAdd, Dst: 2, A: 2, B: 3},
		{Op: ir.OpStore, A: 1, B: 2, Width: 8},
		{Op: ir.OpRet, A: 0},
	}
	prog.AddFunc(helper)

	main := &ir.Func{Name: "main", NumRegs: 2}
	mb := main.NewBlock("entry")
	mb.Instrs = []ir.Instr{
		{Op: ir.OpCall, Dst: 0, Name: "helper"},
		{Op: ir.OpLib, Dst: 1, Name: "kick"},
		{Op: ir.OpRet, A: 0},
	}
	prog.AddFunc(main)

	rt := &restoreRT{}
	m := newTestMachine(t, prog, rt)
	out := m.Run(0)
	if out.Kind != OutExited {
		t.Fatalf("outcome = %+v, want OutExited", out)
	}
	// The restored helper frame had r0 = 0 (snapshot predates probe's
	// return value), so helper returns 0 the second time through.
	if out.Code != 0 {
		t.Errorf("exit code = %d, want 0 (restored r0)", out.Code)
	}
	if !rt.captured {
		t.Fatal("runtime never observed the post-restore write")
	}
	if rt.topFn != "helper" {
		t.Errorf("post-restore top frame = %s, want helper (the restored frame)", rt.topFn)
	}
	if rt.topReg1 != 99 {
		t.Errorf("post-restore top frame r1 = %d, want 99 (the libcall return value)", rt.topReg1)
	}
	if rt.kicks != 2 {
		t.Errorf("kick executed %d times, want 2", rt.kicks)
	}
	// Memory is not rolled back by Restore: helper's body ran twice.
	if g, err := m.Space.Load(m.GlobalAddr("g"), 8); err != nil || g != 2 {
		t.Errorf("global g = %d (err %v), want 2", g, err)
	}
}

// TestFramePoolingPreservesSnapshots: register slices recycled through the
// frame pool must never alias a snapshot's copies — restoring the same
// snapshot repeatedly after deep call activity must reproduce identical
// state.
func TestFramePoolingPreservesSnapshots(t *testing.T) {
	prog := ir.NewProgram()
	prog.AddFunc(leafFunc("leaf", 21, 8))
	main := &ir.Func{Name: "main", NumRegs: 3}
	mb := main.NewBlock("entry")
	mb.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: 1, Imm: 1111},
		{Op: ir.OpConst, Dst: 2, Imm: 2222},
		{Op: ir.OpCall, Dst: 0, Name: "leaf"},
		{Op: ir.OpCall, Dst: 0, Name: "leaf"},
		{Op: ir.OpRet, A: 0},
	}
	prog.AddFunc(main)

	m := newTestMachine(t, prog, nil)
	if out := m.Run(2); out.Kind != OutStepLimit { // r1, r2 set
		t.Fatalf("outcome = %v, want OutStepLimit", out.Kind)
	}
	snap := m.Snapshot()

	// Churn the pool: two call/returns recycle register slices.
	if out := m.Run(0); out.Kind != OutExited {
		t.Fatalf("outcome = %v, want OutExited", out.Kind)
	}

	for round := 0; round < 2; round++ {
		m.Restore(snap)
		f := &m.frames[len(m.frames)-1]
		if f.Regs[1] != 1111 || f.Regs[2] != 2222 {
			t.Fatalf("round %d: restored regs = %v, want r1=1111 r2=2222", round, f.Regs)
		}
		// Scribble over the live frame; the snapshot must be unaffected.
		f.Regs[1] = -1
		f.Regs[2] = -2
	}
	if snap.frames[0].Regs[1] != 1111 || snap.frames[0].Regs[2] != 2222 {
		t.Fatal("snapshot registers were clobbered through a pooled slice")
	}
}
