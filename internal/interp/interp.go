// Package interp executes IR programs against the simulated address space
// and operating system.
//
// The machine is resumable: Run executes until the program exits, traps
// fatally, blocks on I/O (epoll_wait with nothing ready), or exhausts a
// step budget. The workload driver interleaves with the machine by feeding
// client bytes between Run calls.
//
// All events FIRestarter cares about are delegated to a Runtime
// implementation: library calls, transaction begin/commit, transactional
// stores, gate dispatch, instruction accounting (for the modelled HTM
// interrupt process) and trap handling. The no-op Direct runtime runs
// uninstrumented programs; package core provides the full recovery runtime.
//
// The machine also maintains a cycle count — a simple deterministic cost
// model (one cycle per simple instruction, two per memory access, plus
// documented surcharges for instrumentation) used as the performance metric
// of the benchmark harness, so results are reproducible and host-
// independent.
package interp

import (
	"errors"
	"fmt"

	"github.com/firestarter-go/firestarter/internal/ir"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/mem"
)

// Cycle costs of the performance model. Simple ALU ops cost one cycle;
// memory accesses two. The instrumentation surcharges (undo logging,
// transaction begin/commit) are charged by the runtime, not here.
const (
	CostSimple  = 1
	CostMem     = 2
	CostCall    = 4
	CostLibBase = 30 // syscall/library-call entry overhead
)

// Trap describes a fail-stop crash.
type Trap struct {
	Code int64 // one of the ir.Trap* codes
	Addr int64 // faulting address for TrapBadAccess
	PC   string
}

// Error implements error.
func (t *Trap) Error() string {
	return fmt.Sprintf("trap %d at %s (addr %#x)", t.Code, t.PC, t.Addr)
}

// Action tells the machine how to proceed after the runtime handled an
// execution event (trap, transaction abort, blocked call).
type Action int

// Actions returned by Runtime.Handle.
const (
	// ActionContinue resumes execution at the machine's (possibly
	// restored) current position.
	ActionContinue Action = iota + 1
	// ActionBlock makes Run return with OutBlocked; the faulting
	// instruction will re-execute on resume.
	ActionBlock
	// ActionDie makes Run return with OutTrapped: the crash was not
	// recoverable.
	ActionDie
)

// Runtime is the recovery layer's interface to the machine.
type Runtime interface {
	// LibCall executes a library call. site is the call site's ID (zero
	// for sites the Library Interface Analyzer did not mark as
	// transaction boundaries). args is a per-machine scratch buffer valid
	// only for the duration of the call: implementations that retain
	// argument values past their return must copy them.
	LibCall(m *Machine, name string, args []int64, site int) (int64, error)

	// Gate dispatches a transaction entry gate: it decides the variant
	// (ir.TxHTM or ir.TxSTM) to execute, and whether to inject a fault
	// into the preceding library call (inject=true, with the register
	// value to install). The machine passes a state snapshot positioned
	// at the gate, which the runtime keeps for rollback.
	Gate(m *Machine, site int, snap *Snapshot) (variant int64, inject bool, injectVal int64)

	// TxBegin activates the transaction chosen by the gate.
	TxBegin(m *Machine, site int, variant int64) error

	// TxEnd commits the active transaction (no-op when none is active).
	TxEnd(m *Machine) error

	// Store performs a store, routed through the active transaction.
	// stmInstrumented marks OpStmStore instructions (undo-logged).
	Store(m *Machine, addr, val int64, width int, stmInstrumented bool) error

	// Load performs a load. Under a hardware transaction in a conflict
	// domain the touched lines join the read set (other threads' stores
	// to them abort us); otherwise it is a plain memory load. The cost
	// model charge (CostMem) stays with the machine, so routing loads
	// through the runtime leaves single-threaded cycle counts untouched.
	Load(m *Machine, addr int64, width int) (int64, error)

	// RegSave is the STM register-save hook (setjmp analog). The HTM
	// variant's hardware saves registers for free, so the runtime only
	// charges work in STM mode.
	RegSave(m *Machine)

	// Tick retires n instructions: drives the HTM interrupt model.
	Tick(m *Machine, n int64) error

	// Handle reacts to an execution event: a trap (as *Trap), a
	// transaction abort, a blocked library call, or heap corruption.
	// When it returns ActionContinue the machine state must have been
	// restored to a consistent resume point.
	Handle(m *Machine, err error) Action

	// Variant returns the transaction variant currently in effect,
	// used by the call/return flow switches. Zero means none (run the
	// HTM clone, whose uninstrumented stores are direct).
	Variant() int64
}

// Profiler receives the machine's call-flow events, timestamped with the
// cost-model cycle and step counters. A profiler observes — it must not
// mutate machine state, and the machine charges no extra cycles for it.
// *obsv.Profile is the standard implementation; the hooks cost a single
// nil-check when no profiler is attached.
type Profiler interface {
	// Enter fires after a frame for fn was pushed.
	Enter(fn string, cycles, steps int64)
	// Exit fires after a frame was popped by a return.
	Exit(cycles, steps int64)
	// Lib fires after a library call completed (or failed). startCycles is
	// the cycle count sampled before the call's base cost was charged.
	Lib(name string, site int, startCycles, cycles, steps int64)
	// Sync fires when the stack changed wholesale (snapshot restore,
	// profiler attach). stack holds the frame function names, bottom
	// first; the slice is reused and only valid during the call.
	Sync(stack []string, cycles, steps int64)
}

// Frame is one call-stack entry.
type Frame struct {
	Fn   *ir.Func
	Blk  int
	Idx  int
	Regs []int64
	FP   int64
	// RetDst is the caller register receiving the return value (-1 to
	// discard); meaningless for the bottom frame.
	RetDst int
}

// Snapshot captures resumable machine state for rollback.
type Snapshot struct {
	frames []Frame
	sp     int64
}

// OutcomeKind classifies why Run returned.
type OutcomeKind int

// Outcome kinds.
const (
	OutExited OutcomeKind = iota + 1
	OutTrapped
	OutBlocked
	OutStepLimit
	OutWatch
)

func (k OutcomeKind) String() string {
	switch k {
	case OutExited:
		return "exited"
	case OutTrapped:
		return "trapped"
	case OutBlocked:
		return "blocked"
	case OutStepLimit:
		return "step-limit"
	case OutWatch:
		return "watch"
	default:
		return fmt.Sprintf("outcome(%d)", int(k))
	}
}

// Outcome is the result of a Run call.
type Outcome struct {
	Kind OutcomeKind
	Code int64 // exit code (OutExited) or trap code (OutTrapped)
	Trap *Trap // populated for OutTrapped
}

// Machine executes one program.
type Machine struct {
	Prog  *ir.Program
	Space *mem.Space
	OS    *libsim.OS
	RT    Runtime

	frames  []Frame
	sp      int64
	globals map[string]int64

	// stackTop/stackLimit bound this machine's stack region. The main
	// machine owns [StackTop-StackBytes, StackTop); threads created by
	// NewThread get their own smaller regions below mem.StackLimit.
	stackTop   int64
	stackLimit int64

	// Cycles is the accumulated cost-model time; Steps counts executed
	// instructions.
	Cycles int64
	Steps  int64

	// BlockHook, when non-nil, is invoked on every basic-block entry
	// (used by the fault injector's execution profiling).
	BlockHook func(fn string, block int)

	exited   bool
	exitCode int64

	// argbuf is the scratch arena for marshalling OpCall/OpLib arguments;
	// it is reused across instructions so the hot path never allocates.
	// Safe because push copies the values into the callee frame and the
	// Runtime.LibCall contract forbids retaining the slice.
	argbuf []int64

	// regPool recycles register slices of popped frames. Slices in the
	// pool are exclusively machine-owned: Snapshot deep-copies frame
	// registers, and doReturn/Restore nil out the frame slots they pop so
	// no stale Frame struct can alias a pooled slice.
	regPool [][]int64

	// prof, when non-nil, observes call flow for the guest profiler;
	// profNames is its reused stack-name scratch buffer.
	prof      Profiler
	profNames []string

	// budget is the remaining step budget of the last limited Run; it is
	// only maintained when Run is given a positive maxSteps (an unlimited
	// run must not count a budget down — it would underflow on very long
	// executions).
	budget int64

	// backend, when non-nil, replaces the tree-walking Run loop (see
	// Backend); it must preserve the tree-walker's observable behaviour
	// bit for bit.
	backend Backend

	// Watchpoint state (record/replay forensics). While a watch is armed
	// Run always takes the tree walker, which checks the condition at
	// every instruction boundary; the first boundary at which
	// Cycles >= watchCycles (or Steps >= watchSteps) disarms the watch,
	// invokes watchFn (if any) with the machine frozen at exactly that
	// boundary, and returns OutWatch. Zero means unarmed.
	watchCycles int64
	watchSteps  int64
	watchFn     func(*Machine)
}

// maxRegPool bounds the number of register slices kept for reuse.
const maxRegPool = 64

// StackBytes is the simulated stack size.
const StackBytes = 512 * 1024

// New loads a program: globals are placed in the data segment, the stack
// is mapped, and a frame for the entry function is pushed. The runtime rt
// may be nil, in which case the Direct runtime is used.
func New(prog *ir.Program, os *libsim.OS, rt Runtime) (*Machine, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	// Load-time name resolution: OpCall/OpGlobalAddr get direct pointers
	// so the execution loop needs no map lookups. Idempotent — programs
	// pre-resolved by transform/faultinj are simply re-checked.
	if err := prog.Resolve(); err != nil {
		return nil, err
	}
	if rt == nil {
		rt = Direct{}
	}
	m := &Machine{
		Prog:       prog,
		Space:      os.Space,
		OS:         os,
		RT:         rt,
		globals:    make(map[string]int64, len(prog.Globals)),
		sp:         mem.StackTop,
		stackTop:   mem.StackTop,
		stackLimit: mem.StackTop - StackBytes,
	}
	addr := int64(mem.GlobalBase)
	for _, g := range prog.Globals {
		size := g.Size
		if size <= 0 {
			size = 8
		}
		if err := m.Space.Map(addr, size); err != nil {
			return nil, fmt.Errorf("interp: mapping global %s: %w", g.Name, err)
		}
		if len(g.Data) > 0 {
			if err := m.Space.WriteBytes(addr, g.Data); err != nil {
				return nil, fmt.Errorf("interp: initializing global %s: %w", g.Name, err)
			}
		}
		g.Addr = addr
		m.globals[g.Name] = addr
		addr += (size + 15) &^ 15
	}
	if err := m.Space.Map(mem.StackTop-StackBytes, StackBytes); err != nil {
		return nil, fmt.Errorf("interp: mapping stack: %w", err)
	}
	entry := prog.Funcs[prog.Entry]
	if entry == nil {
		return nil, fmt.Errorf("interp: entry function %q not found", prog.Entry)
	}
	os.SetCycleSink(&m.Cycles)
	if err := m.push(entry, nil, -1); err != nil {
		return nil, err
	}
	return m, nil
}

// ThreadStackBytes is the simulated stack size of a thread created by
// NewThread. Threads run shallow worker loops, so they get smaller stacks
// than the main machine (real pthread stacks are configured the same way).
const ThreadStackBytes = 256 * 1024

// NewThread creates a machine sharing the parent's program, address space,
// OS and globals, with its own stack region and an initial frame for the
// named entry function. slot (>= 1) picks the stack region: thread stacks
// grow down from mem.StackLimit, separated by an unmapped guard page, so a
// thread overflowing its stack traps instead of corrupting a neighbour.
func NewThread(parent *Machine, rt Runtime, fn *ir.Func, args []int64, slot int) (*Machine, error) {
	if slot < 1 {
		return nil, fmt.Errorf("interp: thread stack slot must be >= 1, got %d", slot)
	}
	if rt == nil {
		rt = Direct{}
	}
	top := mem.StackLimit - int64(slot-1)*(ThreadStackBytes+mem.PageSize)
	base := top - ThreadStackBytes
	if base < mem.HeapLimit {
		return nil, fmt.Errorf("interp: thread stack slot %d collides with the heap", slot)
	}
	if err := parent.Space.Map(base, ThreadStackBytes); err != nil {
		return nil, fmt.Errorf("interp: mapping thread stack: %w", err)
	}
	m := &Machine{
		Prog:       parent.Prog,
		Space:      parent.Space,
		OS:         parent.OS,
		RT:         rt,
		globals:    parent.globals,
		sp:         top,
		stackTop:   top,
		stackLimit: base,
		backend:    parent.backend,
	}
	if err := m.push(fn, args, -1); err != nil {
		return nil, err
	}
	return m, nil
}

// GlobalAddr returns the loaded address of a global (tests and tools).
func (m *Machine) GlobalAddr(name string) int64 { return m.globals[name] }

// Exited reports whether the program has terminated.
func (m *Machine) Exited() bool { return m.exited }

// ExitCode returns the program's exit code once Exited.
func (m *Machine) ExitCode() int64 { return m.exitCode }

// Depth returns the current call-stack depth.
func (m *Machine) Depth() int { return len(m.frames) }

// CurrentFunc returns the name of the function executing on top of the
// call stack ("" for an empty stack). The bench harness uses it to verify
// a server blocked at its declared quiesce point before arming request
// shedding.
func (m *Machine) CurrentFunc() string {
	if len(m.frames) == 0 {
		return ""
	}
	return m.frames[len(m.frames)-1].Fn.Name
}

// SetProfiler attaches (or with nil detaches) a call-flow profiler. The
// current stack is synced immediately so attribution starts from here.
func (m *Machine) SetProfiler(p Profiler) {
	m.prof = p
	if p != nil {
		m.syncProfiler()
	}
}

// syncProfiler replays the current stack shape into the profiler.
func (m *Machine) syncProfiler() {
	names := m.profNames[:0]
	for i := range m.frames {
		names = append(names, m.frames[i].Fn.Name)
	}
	m.profNames = names
	m.prof.Sync(names, m.Cycles, m.Steps)
}

// pcString renders the current position for diagnostics.
func (m *Machine) pcString() string {
	if len(m.frames) == 0 {
		return "<no frame>"
	}
	f := &m.frames[len(m.frames)-1]
	return fmt.Sprintf("%s.b%d.%d", f.Fn.Name, f.Blk, f.Idx)
}

// allocRegs returns a zeroed register file of size n, reusing a pooled
// slice from a popped frame when one is large enough.
func (m *Machine) allocRegs(n int) []int64 {
	if k := len(m.regPool); k > 0 {
		regs := m.regPool[k-1]
		m.regPool[k-1] = nil
		m.regPool = m.regPool[:k-1]
		if cap(regs) >= n {
			regs = regs[:n]
			for i := range regs {
				regs[i] = 0
			}
			return regs
		}
	}
	return make([]int64, n)
}

// freeRegs returns a popped frame's register slice to the pool. Callers
// must drop their own reference (the Frame slot) first.
func (m *Machine) freeRegs(regs []int64) {
	if regs != nil && len(m.regPool) < maxRegPool {
		m.regPool = append(m.regPool, regs)
	}
}

// marshalArgs gathers argument registers into the machine's scratch
// arena. The returned slice is valid until the next marshalArgs call:
// push copies it into the callee frame, and Runtime.LibCall
// implementations must copy values they retain.
func (m *Machine) marshalArgs(idx []int, regs []int64) []int64 {
	if cap(m.argbuf) < len(idx) {
		m.argbuf = make([]int64, len(idx))
	}
	args := m.argbuf[:len(idx)]
	for i, a := range idx {
		args[i] = regs[a]
	}
	return args
}

// push enters fn with the given arguments.
func (m *Machine) push(fn *ir.Func, args []int64, retDst int) error {
	newSP := (m.sp - fn.FrameSize) &^ 15
	if newSP < m.stackLimit {
		return &Trap{Code: ir.TrapBadAccess, Addr: newSP, PC: "stack overflow in " + fn.Name}
	}
	if len(args) > fn.NumRegs {
		// A call site passing more arguments than the callee has
		// registers must not silently drop the excess: that executes the
		// callee with a truncated argument list and corrupts the guest in
		// a way no later check catches. Fail-stop instead.
		return &Trap{Code: ir.TrapBadCall, PC: "argument overflow calling " + fn.Name}
	}
	regs := m.allocRegs(fn.NumRegs)
	copy(regs, args)
	entry := 0
	if fn.Cloned && m.RT.Variant() == ir.TxSTM {
		entry = fn.EntrySTM
	} else if fn.Cloned {
		entry = fn.EntryHTM
	}
	m.frames = append(m.frames, Frame{Fn: fn, Blk: entry, Idx: 0, Regs: regs, FP: newSP, RetDst: retDst})
	m.sp = newSP
	if m.prof != nil {
		m.prof.Enter(fn.Name, m.Cycles, m.Steps)
	}
	return nil
}

// Snapshot deep-copies the resumable machine state. All frames' register
// copies share one backing array: snapshots are taken on every gate, so
// the allocation count per snapshot matters more than layout.
func (m *Machine) Snapshot() *Snapshot {
	total := 0
	for i := range m.frames {
		total += len(m.frames[i].Regs)
	}
	backing := make([]int64, total)
	s := &Snapshot{sp: m.sp, frames: make([]Frame, len(m.frames))}
	off := 0
	for i := range m.frames {
		s.frames[i] = m.frames[i]
		n := len(m.frames[i].Regs)
		dst := backing[off : off+n : off+n]
		copy(dst, m.frames[i].Regs)
		s.frames[i].Regs = dst
		off += n
	}
	return s
}

// Restore rewinds the machine to a snapshot. The snapshot's frame data is
// copied so the same snapshot can be restored repeatedly; register slices
// of live frames are reused in place (they are exclusively machine-owned).
func (m *Machine) Restore(s *Snapshot) {
	m.sp = s.sp
	n := len(s.frames)
	// Frames above the restored depth release their register files.
	for i := n; i < len(m.frames); i++ {
		m.freeRegs(m.frames[i].Regs)
		m.frames[i] = Frame{}
	}
	if cap(m.frames) >= n {
		m.frames = m.frames[:n]
	} else {
		old := m.frames
		m.frames = make([]Frame, n)
		copy(m.frames, old)
	}
	for i := range s.frames {
		regs := m.frames[i].Regs
		if cap(regs) < len(s.frames[i].Regs) {
			regs = make([]int64, len(s.frames[i].Regs))
		}
		regs = regs[:len(s.frames[i].Regs)]
		copy(regs, s.frames[i].Regs)
		f := s.frames[i]
		f.Regs = regs
		m.frames[i] = f
	}
	if m.prof != nil {
		m.syncProfiler()
	}
}

// Run executes until exit, fatal trap, blocked I/O, or maxSteps
// instructions (0 = no limit). Execution goes through the installed
// backend (SetBackend); the default is the tree-walking interpreter.
// While a watchpoint is armed execution always uses the tree walker:
// backends are bit-identical by contract, so stopping on the reference
// loop observes the same state at the same boundary.
func (m *Machine) Run(maxSteps int64) Outcome {
	if m.backend != nil && !m.WatchArmed() {
		return m.backend.Run(m, maxSteps)
	}
	return m.runTree(maxSteps)
}

// WatchCycles arms a watchpoint that fires at the first instruction
// boundary where Cycles >= c. fn (optional) runs with the machine frozen
// at that boundary, before Run returns OutWatch. The watch persists
// across Run calls until it fires or ClearWatch is called.
func (m *Machine) WatchCycles(c int64, fn func(*Machine)) {
	m.watchCycles, m.watchSteps, m.watchFn = c, 0, fn
}

// WatchSteps arms a watchpoint that fires at the first instruction
// boundary where Steps >= s (i.e. after instruction s has retired).
func (m *Machine) WatchSteps(s int64, fn func(*Machine)) {
	m.watchCycles, m.watchSteps, m.watchFn = 0, s, fn
}

// WatchArmed reports whether a watchpoint is pending.
func (m *Machine) WatchArmed() bool { return m.watchCycles > 0 || m.watchSteps > 0 }

// ClearWatch disarms any pending watchpoint.
func (m *Machine) ClearWatch() { m.watchCycles, m.watchSteps, m.watchFn = 0, 0, nil }

// watchHit reports whether the armed watch condition holds now.
func (m *Machine) watchHit() bool {
	return (m.watchCycles > 0 && m.Cycles >= m.watchCycles) ||
		(m.watchSteps > 0 && m.Steps >= m.watchSteps)
}

// runTree is the tree-walking interpreter loop — the reference semantics
// every backend must match.
func (m *Machine) runTree(maxSteps int64) Outcome {
	if m.exited {
		return Outcome{Kind: OutExited, Code: m.exitCode}
	}
	// Only track the budget when a limit is set: an unlimited run that
	// counted down from zero would underflow int64 on very long runs.
	limited := maxSteps > 0
	m.budget = 0
	if limited {
		m.budget = maxSteps
	}
	for {
		if m.exited {
			return Outcome{Kind: OutExited, Code: m.exitCode}
		}
		if m.WatchArmed() && m.watchHit() {
			fn := m.watchFn
			m.ClearWatch()
			if fn != nil {
				fn(m)
			}
			return Outcome{Kind: OutWatch}
		}
		if limited {
			if m.budget <= 0 {
				return Outcome{Kind: OutStepLimit}
			}
			m.budget--
		}
		m.Steps++

		err := m.step()
		if err == nil {
			if terr := m.RT.Tick(m, 1); terr != nil {
				err = terr
			}
		}
		if err == nil {
			continue
		}
		switch m.RT.Handle(m, err) {
		case ActionContinue:
			continue
		case ActionBlock:
			return Outcome{Kind: OutBlocked}
		default:
			var trap *Trap
			if !errors.As(err, &trap) {
				trap = &Trap{Code: ir.TrapBadAccess, PC: m.pcString()}
				if ae := (*mem.AccessError)(nil); errors.As(err, &ae) {
					trap.Addr = ae.Addr
				}
				if de := (*mem.DomainError)(nil); errors.As(err, &de) {
					trap.Code, trap.Addr = ir.TrapDomain, de.Addr
				}
			}
			m.exited = true
			return Outcome{Kind: OutTrapped, Code: trap.Code, Trap: trap}
		}
	}
}

// trapHere builds a Trap at the current position.
func (m *Machine) trapHere(code int64, addr int64) *Trap {
	return &Trap{Code: code, Addr: addr, PC: m.pcString()}
}

// FrameInfo describes one live call-stack frame for forensics dumps.
type FrameInfo struct {
	Func  string  `json:"func"`
	Block int     `json:"block"`
	Index int     `json:"index"`
	Regs  []int64 `json:"regs"`
}

// Frames returns the live call stack, outermost frame first, with
// register contents copied out. Intended for state dumps (firetrace
// -replay), not hot paths.
func (m *Machine) Frames() []FrameInfo {
	out := make([]FrameInfo, len(m.frames))
	for i := range m.frames {
		f := &m.frames[i]
		out[i] = FrameInfo{
			Func:  f.Fn.Name,
			Block: f.Blk,
			Index: f.Idx,
			Regs:  append([]int64(nil), f.Regs...),
		}
	}
	return out
}

// Backtrace renders the call stack innermost-first, one
// "func.bBLOCK.INDEX" line per frame.
func (m *Machine) Backtrace() []string {
	out := make([]string, 0, len(m.frames))
	for i := len(m.frames) - 1; i >= 0; i-- {
		f := &m.frames[i]
		out = append(out, fmt.Sprintf("%s.b%d.%d", f.Fn.Name, f.Blk, f.Idx))
	}
	return out
}

// Digest returns an FNV-1a hash over the snapshot: per frame the
// function identity, position and register contents, plus the stack
// pointer. Two machines in the same architectural state digest equal.
func (s *Snapshot) Digest() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v int64) {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			h = (h ^ (u>>(8*i))&0xff) * prime
		}
	}
	mixStr := func(str string) {
		mix(int64(len(str)))
		for i := 0; i < len(str); i++ {
			h = (h ^ uint64(str[i])) * prime
		}
	}
	mix(s.sp)
	mix(int64(len(s.frames)))
	for i := range s.frames {
		f := &s.frames[i]
		mixStr(f.Fn.Name)
		mix(int64(f.Blk))
		mix(int64(f.Idx))
		mix(f.FP)
		mix(int64(f.RetDst))
		mix(int64(len(f.Regs)))
		for _, r := range f.Regs {
			mix(r)
		}
	}
	return h
}

// step executes one instruction. On success the program counter has
// advanced; on error it still points at the faulting instruction.
func (m *Machine) step() error {
	f := &m.frames[len(m.frames)-1]
	blk := f.Fn.Blocks[f.Blk]
	if f.Idx >= len(blk.Instrs) {
		return fmt.Errorf("interp: fell off block %s.b%d", f.Fn.Name, f.Blk)
	}
	if f.Idx == 0 && m.BlockHook != nil {
		m.BlockHook(f.Fn.Name, f.Blk)
	}
	in := &blk.Instrs[f.Idx]

	switch in.Op {
	case ir.OpConst:
		f.Regs[in.Dst] = in.Imm
		m.Cycles += CostSimple
	case ir.OpMov:
		f.Regs[in.Dst] = f.Regs[in.A]
		m.Cycles += CostSimple
	case ir.OpBin:
		v, ok := in.Bin.Eval(f.Regs[in.A], f.Regs[in.B])
		if !ok {
			return m.trapHere(ir.TrapDivZero, 0)
		}
		f.Regs[in.Dst] = v
		m.Cycles += CostSimple
	case ir.OpNeg:
		f.Regs[in.Dst] = -f.Regs[in.A]
		m.Cycles += CostSimple
	case ir.OpNot:
		if f.Regs[in.A] == 0 {
			f.Regs[in.Dst] = 1
		} else {
			f.Regs[in.Dst] = 0
		}
		m.Cycles += CostSimple
	case ir.OpLoad:
		v, err := m.RT.Load(m, f.Regs[in.A]+in.Imm, in.Width)
		if err != nil {
			if errors.Is(err, mem.ErrUnmapped) {
				return m.trapHere(ir.TrapBadAccess, f.Regs[in.A]+in.Imm)
			}
			if errors.Is(err, mem.ErrDomain) {
				return m.trapHere(ir.TrapDomain, f.Regs[in.A]+in.Imm)
			}
			// Non-memory errors (a pending conflict abort) go to the
			// runtime's Handle like a failing store would.
			return err
		}
		f.Regs[in.Dst] = v
		m.Cycles += CostMem
	case ir.OpStore:
		m.Cycles += CostMem
		if err := m.RT.Store(m, f.Regs[in.A]+in.Imm, f.Regs[in.B], in.Width, false); err != nil {
			return m.storeError(err, f.Regs[in.A]+in.Imm)
		}
	case ir.OpStmStore:
		m.Cycles += CostMem
		if err := m.RT.Store(m, f.Regs[in.A]+in.Imm, f.Regs[in.B], in.Width, true); err != nil {
			return m.storeError(err, f.Regs[in.A]+in.Imm)
		}
	case ir.OpFrameAddr:
		f.Regs[in.Dst] = f.FP + in.Imm
		m.Cycles += CostSimple
	case ir.OpGlobalAddr:
		if in.Global != nil {
			f.Regs[in.Dst] = in.Global.Addr
		} else {
			f.Regs[in.Dst] = m.globals[in.Name]
		}
		m.Cycles += CostSimple
	case ir.OpCall:
		callee := in.Callee
		if callee == nil {
			// Slow path for programs mutated after load; an unknown
			// callee is a simulated crash, never a host nil-deref.
			callee = m.Prog.Funcs[in.Name]
			if callee == nil {
				return m.trapHere(ir.TrapBadCall, 0)
			}
		}
		args := m.marshalArgs(in.Args, f.Regs)
		m.Cycles += CostCall
		f.Idx++ // return address: the instruction after the call
		if err := m.push(callee, args, in.Dst); err != nil {
			f.Idx--
			return err
		}
		return nil
	case ir.OpLib:
		args := m.marshalArgs(in.Args, f.Regs)
		c0 := m.Cycles
		m.Cycles += CostLibBase
		ret, err := m.RT.LibCall(m, in.Name, args, in.Site)
		if m.prof != nil {
			m.prof.Lib(in.Name, in.Site, c0, m.Cycles, m.Steps)
		}
		if err != nil {
			return err
		}
		// The frame slice may have been reallocated if the runtime
		// restored a snapshot during the call; refuse to write through
		// a stale pointer.
		f = &m.frames[len(m.frames)-1]
		if in.Dst >= 0 {
			f.Regs[in.Dst] = ret
		}
	case ir.OpJmp:
		f.Blk = in.Then
		f.Idx = 0
		m.Cycles += CostSimple
		return nil
	case ir.OpBr:
		if f.Regs[in.A] != 0 {
			f.Blk = in.Then
		} else {
			f.Blk = in.Else
		}
		f.Idx = 0
		m.Cycles += CostSimple
		return nil
	case ir.OpRet:
		m.Cycles += CostSimple
		return m.doReturn(in)
	case ir.OpTrap:
		return m.trapHere(in.Imm, 0)
	case ir.OpTxBegin:
		if err := m.RT.TxBegin(m, in.Site, in.Imm); err != nil {
			return err
		}
	case ir.OpTxEnd:
		if err := m.RT.TxEnd(m); err != nil {
			return err
		}
	case ir.OpRegSave:
		m.RT.RegSave(m)
	case ir.OpGate:
		return m.doGate(in)
	default:
		return fmt.Errorf("interp: unknown opcode %d at %s", int(in.Op), m.pcString())
	}
	f = &m.frames[len(m.frames)-1]
	f.Idx++
	return nil
}

func (m *Machine) storeError(err error, addr int64) error {
	if errors.Is(err, mem.ErrUnmapped) {
		return m.trapHere(ir.TrapBadAccess, addr)
	}
	if errors.Is(err, mem.ErrDomain) {
		return m.trapHere(ir.TrapDomain, addr)
	}
	return err
}

// doGate executes a transaction entry gate: snapshot, policy dispatch,
// optional fault injection, then a jump into the chosen variant's clone.
func (m *Machine) doGate(in *ir.Instr) error {
	snap := m.Snapshot()
	variant, inject, injectVal := m.RT.Gate(m, in.Site, snap)
	f := &m.frames[len(m.frames)-1]
	m.Cycles += 3 // gate dispatch cost
	if inject && in.Dst >= 0 {
		f.Regs[in.Dst] = injectVal
	}
	if variant == ir.TxSTM {
		f.Blk = in.Else
	} else {
		f.Blk = in.Then
	}
	f.Idx = 0
	return nil
}

// doReturn pops a frame, applying the return-site flow switch: execution
// continues in the caller's clone matching the current transaction
// variant (§IV-B).
func (m *Machine) doReturn(in *ir.Instr) error {
	f := &m.frames[len(m.frames)-1]
	var ret int64
	if in.A >= 0 {
		ret = f.Regs[in.A]
	}
	retDst := f.RetDst
	m.freeRegs(f.Regs)
	f.Regs = nil // drop the stale reference so nothing can alias the pool
	m.frames = m.frames[:len(m.frames)-1]
	if m.prof != nil {
		m.prof.Exit(m.Cycles, m.Steps)
	}
	if len(m.frames) == 0 {
		// Bottom frame: restore the exact pre-push stack pointer. The
		// old intermediate `f.FP + f.Fn.FrameSize` guess was wrong here
		// (frame sizes are rounded to 16 at push), leaving sp drifted
		// at program exit.
		m.sp = m.stackTop
		m.exited = true
		m.exitCode = ret
		// Commit any transaction still pending at exit so deferred
		// effects (free/close) are not lost.
		return m.RT.TxEnd(m)
	}
	caller := &m.frames[len(m.frames)-1]
	m.sp = caller.FP
	if retDst >= 0 {
		caller.Regs[retDst] = ret
	}
	// Return-site flow switch: if the caller's block is a clone of the
	// wrong variant, continue at the same index in its counterpart.
	blk := caller.Fn.Blocks[caller.Blk]
	if v := m.RT.Variant(); blk.Variant != 0 && v != 0 && int64(blk.Variant) != v && blk.Counterpart >= 0 {
		caller.Blk = blk.Counterpart
	}
	return nil
}

// Direct is the pass-through runtime for uninstrumented programs: library
// calls go straight to the OS, stores go straight to memory, and every
// trap is fatal.
type Direct struct{}

var _ Runtime = Direct{}

// LibCall implements Runtime.
func (Direct) LibCall(m *Machine, name string, args []int64, _ int) (int64, error) {
	return m.OS.Call(name, args)
}

// Gate implements Runtime; uninstrumented programs have no gates.
func (Direct) Gate(*Machine, int, *Snapshot) (int64, bool, int64) { return ir.TxHTM, false, 0 }

// TxBegin implements Runtime.
func (Direct) TxBegin(*Machine, int, int64) error { return nil }

// TxEnd implements Runtime.
func (Direct) TxEnd(*Machine) error { return nil }

// Store implements Runtime.
func (Direct) Store(m *Machine, addr, val int64, width int, _ bool) error {
	return m.Space.Store(addr, val, width)
}

// Load implements Runtime.
func (Direct) Load(m *Machine, addr int64, width int) (int64, error) {
	return m.Space.Load(addr, width)
}

// RegSave implements Runtime.
func (Direct) RegSave(*Machine) {}

// Tick implements Runtime.
func (Direct) Tick(*Machine, int64) error { return nil }

// TickLive implements TickCoalescer: Direct's Tick never does anything,
// so backends may coalesce freely.
func (Direct) TickLive() bool { return false }

// Handle implements Runtime: blocked calls yield, everything else is fatal.
func (Direct) Handle(_ *Machine, err error) Action {
	if errors.Is(err, libsim.ErrBlocked) {
		return ActionBlock
	}
	return ActionDie
}

// Variant implements Runtime.
func (Direct) Variant() int64 { return 0 }
