package interp

import (
	"errors"

	"github.com/firestarter-go/firestarter/internal/bytecode"
	"github.com/firestarter-go/firestarter/internal/ir"
	"github.com/firestarter-go/firestarter/internal/mem"
)

// Backend is the machine's execution-strategy seam: Run must be
// observationally identical to the tree-walking interpreter (same
// outcomes, Cycles, Steps, runtime events, profiler events and trap
// positions, in the same order). The machine delegates Run to the
// installed backend; nil means the tree-walker.
type Backend interface {
	// Name identifies the backend ("tree", "bytecode").
	Name() string
	// Run executes like Machine.Run.
	Run(m *Machine, maxSteps int64) Outcome
}

// TickCoalescer is an optional Runtime capability: TickLive reports
// whether Tick currently has an effect. A backend may skip per-
// instruction Tick calls (and the program-counter bookkeeping that feeds
// them) while TickLive is false, re-checking after every event that can
// change transaction state. Runtimes without this capability are ticked
// on every instruction, exactly like the tree-walker.
type TickCoalescer interface {
	TickLive() bool
}

// TickBatcher is an optional extension of TickCoalescer: TickBudget
// reports how many upcoming per-instruction ticks are guaranteed to be
// observation-free — pure interrupt-countdown decrements that cannot
// abort, deliver a pending doom, or otherwise change machine-visible
// state. A backend may defer that many ticks and apply them in one
// batched Tick(n) call, provided deferred ticks are flushed before every
// runtime interaction (which may change transaction state) and before
// returning, and the budget is re-queried after every delivered tick.
type TickBatcher interface {
	TickCoalescer
	TickBudget() int64
}

// SetBackend installs an execution backend (nil restores the tree-walker).
func (m *Machine) SetBackend(b Backend) { m.backend = b }

// BackendName names the machine's active execution strategy.
func (m *Machine) BackendName() string {
	if m.backend == nil {
		return "tree"
	}
	return m.backend.Name()
}

// NewBytecodeBackend compiles prog and returns a backend executing its
// bytecode. Machines running a different program instance fall back to
// the tree-walker; programs must not be mutated after compilation.
func NewBytecodeBackend(prog *ir.Program) (Backend, error) {
	bp, err := bytecode.Compile(prog)
	if err != nil {
		return nil, err
	}
	return &bytecodeBackend{prog: bp}, nil
}

// UseBytecode compiles the machine's program and installs the bytecode
// backend on it.
func UseBytecode(m *Machine) error {
	b, err := NewBytecodeBackend(m.Prog)
	if err != nil {
		return err
	}
	m.SetBackend(b)
	return nil
}

type bytecodeBackend struct {
	prog *bytecode.Program
}

// Name implements Backend.
func (b *bytecodeBackend) Name() string { return "bytecode" }

// fail routes an execution error through the runtime, mirroring the tail
// of the tree-walker's Run loop. done=false means ActionContinue: the
// machine was restored to a consistent position and the caller must
// re-derive its position (continue the resync loop). Frame coordinates
// must be synced to the faulting instruction before calling (trap PC
// strings are user-visible).
func (b *bytecodeBackend) fail(m *Machine, err error, co TickCoalescer, tickLive *bool) (Outcome, bool) {
	switch m.RT.Handle(m, err) {
	case ActionContinue:
		*tickLive = co == nil || co.TickLive()
		return Outcome{}, false
	case ActionBlock:
		return Outcome{Kind: OutBlocked}, true
	default:
		var trap *Trap
		if !errors.As(err, &trap) {
			trap = &Trap{Code: ir.TrapBadAccess, PC: m.pcString()}
			if ae := (*mem.AccessError)(nil); errors.As(err, &ae) {
				trap.Addr = ae.Addr
			}
			if de := (*mem.DomainError)(nil); errors.As(err, &de) {
				trap.Code, trap.Addr = ir.TrapDomain, de.Addr
			}
		}
		m.exited = true
		return Outcome{Kind: OutTrapped, Code: trap.Code, Trap: trap}, true
	}
}

// treeStep runs one full tree-walker iteration (budget, step, tick,
// handle) — the fallback for positions that are not bytecode boundaries:
// a resume in the middle of a fused superinstruction, or a function the
// compiled program does not know. done=true carries a finished outcome.
func (b *bytecodeBackend) treeStep(m *Machine, limited bool, co TickCoalescer, tickLive *bool) (Outcome, bool) {
	if limited {
		if m.budget <= 0 {
			return Outcome{Kind: OutStepLimit}, true
		}
		m.budget--
	}
	m.Steps++
	err := m.step()
	if err == nil {
		*tickLive = co == nil || co.TickLive()
		if *tickLive {
			if terr := m.RT.Tick(m, 1); terr != nil {
				err = terr
			}
		}
	}
	if err == nil {
		return Outcome{}, false
	}
	return b.fail(m, err, co, tickLive)
}

// Run implements Backend. The executor retires source instructions with
// the tree-walker's exact accounting — one budget unit, one Steps
// increment, one cost charge and one runtime Tick per source instruction,
// in the same order — while dispatching over the flat fused stream.
//
// Frame positions stay in source (block, index) coordinates so snapshots
// interoperate with the tree-walker. While ticks are live the coordinates
// are kept exact around every delivered tick; while the runtime reports
// ticks dead (TickCoalescer) they are allowed to go stale between
// runtime-visible events, and are re-synced before every runtime call,
// trap, snapshot, budget stop and Run return.
//
// Tick batching: when the runtime implements TickBatcher, ticks inside
// the guaranteed observation-free budget are deferred (`pending` counts
// retired-but-unticked instructions, `tickGas` the remaining budget) and
// applied in one Tick(n) at the next runtime interaction or at the tick
// that may observe something. A batched flush cannot abort by
// construction, so the stale coordinates it runs under are unobservable.
// `pending` is always zero when the resync loop re-enters and when Run
// returns; `tickGas` is conservatively re-queried after every resync.
func (b *bytecodeBackend) Run(m *Machine, maxSteps int64) Outcome {
	if m.Prog != b.prog.Src {
		// Compiled for a different program instance: run the reference
		// interpreter rather than risk divergence.
		return m.runTree(maxSteps)
	}
	if m.exited {
		return Outcome{Kind: OutExited, Code: m.exitCode}
	}
	limited := maxSteps > 0
	m.budget = 0
	if limited {
		m.budget = maxSteps
	}
	co, _ := m.RT.(TickCoalescer)
	batcher, _ := m.RT.(TickBatcher)
	tickLive := co == nil || co.TickLive()
	var pending, tickGas int64

resync:
	for {
		// Transaction state may have changed on any path that lands here;
		// the deferral budget must be re-derived before more ticks defer.
		tickGas = 0
		if m.exited {
			return Outcome{Kind: OutExited, Code: m.exitCode}
		}
		f := &m.frames[len(m.frames)-1]
		code := b.prog.Code(f.Fn)
		var pc int
		aligned := false
		if code != nil {
			pc, aligned = code.PCAt(f.Blk, f.Idx)
		}
		if !aligned {
			// Mid-superinstruction resume (or an unknown function):
			// retire source instructions until we are back on a boundary.
			out, done := b.treeStep(m, limited, co, &tickLive)
			if done {
				return out
			}
			continue resync
		}
		insts := code.Insts
		regs := f.Regs

		for {
			in := &insts[pc]
			if limited {
				if m.budget <= 0 {
					f.Blk, f.Idx = in.Blk, in.Idx
					if pending > 0 {
						terr := m.RT.Tick(m, pending)
						pending = 0
						if terr != nil {
							out, done := b.fail(m, terr, co, &tickLive)
							if done {
								return out
							}
							continue resync
						}
					}
					return Outcome{Kind: OutStepLimit}
				}
				m.budget--
			}
			m.Steps++
			if in.BlockStart && m.BlockHook != nil {
				m.BlockHook(f.Fn.Name, in.Blk)
			}

			switch in.Op {
			case bytecode.OpConst:
				regs[in.Dst] = in.Imm
				m.Cycles += CostSimple
				pc++

			case bytecode.OpMov:
				regs[in.Dst] = regs[in.A]
				m.Cycles += CostSimple
				pc++

			case bytecode.OpBin:
				v, ok := in.Bin.Eval(regs[in.A], regs[in.B])
				if !ok {
					f.Blk, f.Idx = in.Blk, in.Idx
					if pending > 0 {
						terr := m.RT.Tick(m, pending)
						pending = 0
						if terr != nil {
							out, done := b.fail(m, terr, co, &tickLive)
							if done {
								return out
							}
							continue resync
						}
					}
					out, done := b.fail(m, m.trapHere(ir.TrapDivZero, 0), co, &tickLive)
					if done {
						return out
					}
					continue resync
				}
				regs[in.Dst] = v
				m.Cycles += CostSimple
				pc++

			case bytecode.OpNeg:
				regs[in.Dst] = -regs[in.A]
				m.Cycles += CostSimple
				pc++

			case bytecode.OpNot:
				if regs[in.A] == 0 {
					regs[in.Dst] = 1
				} else {
					regs[in.Dst] = 0
				}
				m.Cycles += CostSimple
				pc++

			case bytecode.OpLoad:
				// Flush deferred ticks: the routed load may touch
				// transaction state (read-set tracking, conflicts).
				if pending > 0 {
					terr := m.RT.Tick(m, pending)
					pending = 0
					if terr != nil {
						f.Blk, f.Idx = in.Blk, in.Idx
						out, done := b.fail(m, terr, co, &tickLive)
						if done {
							return out
						}
						continue resync
					}
				}
				addr := regs[in.A] + in.Imm
				v, err := m.RT.Load(m, addr, in.Width)
				if err != nil {
					f.Blk, f.Idx = in.Blk, in.Idx
					if errors.Is(err, mem.ErrUnmapped) {
						err = m.trapHere(ir.TrapBadAccess, addr)
					} else if errors.Is(err, mem.ErrDomain) {
						err = m.trapHere(ir.TrapDomain, addr)
					}
					out, done := b.fail(m, err, co, &tickLive)
					if done {
						return out
					}
					continue resync
				}
				regs[in.Dst] = v
				m.Cycles += CostMem
				pc++

			case bytecode.OpStore, bytecode.OpStmStore:
				// Flush deferred ticks: the routed store may abort the
				// transaction (capacity), which must observe the same
				// countdown the tree-walker would have applied.
				if pending > 0 {
					terr := m.RT.Tick(m, pending)
					pending = 0
					if terr != nil {
						f.Blk, f.Idx = in.Blk, in.Idx
						out, done := b.fail(m, terr, co, &tickLive)
						if done {
							return out
						}
						continue resync
					}
				}
				m.Cycles += CostMem
				addr := regs[in.A] + in.Imm
				if err := m.RT.Store(m, addr, regs[in.B], in.Width, in.Op == bytecode.OpStmStore); err != nil {
					f.Blk, f.Idx = in.Blk, in.Idx
					out, done := b.fail(m, m.storeError(err, addr), co, &tickLive)
					if done {
						return out
					}
					continue resync
				}
				pc++

			case bytecode.OpFrameAddr:
				regs[in.Dst] = f.FP + in.Imm
				m.Cycles += CostSimple
				pc++

			case bytecode.OpGlobalAddr:
				regs[in.Dst] = in.Imm
				m.Cycles += CostSimple
				pc++

			case bytecode.OpJmp:
				m.Cycles += CostSimple
				pc = in.Then

			case bytecode.OpBr:
				m.Cycles += CostSimple
				if regs[in.A] != 0 {
					pc = in.Then
				} else {
					pc = in.Else
				}

			case bytecode.OpCmpBr:
				// Component 1: the compare.
				v, ok := in.Bin.Eval(regs[in.A], regs[in.B])
				if !ok {
					// Unreachable (div/rem never fuse); kept for safety.
					f.Blk, f.Idx = in.Blk, in.Idx
					if pending > 0 {
						terr := m.RT.Tick(m, pending)
						pending = 0
						if terr != nil {
							out, done := b.fail(m, terr, co, &tickLive)
							if done {
								return out
							}
							continue resync
						}
					}
					out, done := b.fail(m, m.trapHere(ir.TrapDivZero, 0), co, &tickLive)
					if done {
						return out
					}
					continue resync
				}
				regs[in.Dst] = v
				m.Cycles += CostSimple
				if tickLive {
					if tickGas > 0 {
						tickGas--
						pending++
					} else {
						f.Blk, f.Idx = in.Blk, in.Idx+1
						terr := m.RT.Tick(m, pending+1)
						pending = 0
						if terr != nil {
							out, done := b.fail(m, terr, co, &tickLive)
							if done {
								return out
							}
							continue resync
						}
						if batcher != nil {
							tickGas = batcher.TickBudget()
						}
					}
				}
				if limited {
					if m.budget <= 0 {
						f.Blk, f.Idx = in.Blk, in.Idx+1
						if pending > 0 {
							terr := m.RT.Tick(m, pending)
							pending = 0
							if terr != nil {
								out, done := b.fail(m, terr, co, &tickLive)
								if done {
									return out
								}
								continue resync
							}
						}
						return Outcome{Kind: OutStepLimit}
					}
					m.budget--
				}
				m.Steps++
				// Component 2: the branch.
				m.Cycles += CostSimple
				if v != 0 {
					pc = in.Then
				} else {
					pc = in.Else
				}

			case bytecode.OpConstBin:
				// Component 1: the constant.
				regs[in.C] = in.Imm
				m.Cycles += CostSimple
				if tickLive {
					if tickGas > 0 {
						tickGas--
						pending++
					} else {
						f.Blk, f.Idx = in.Blk, in.Idx+1
						terr := m.RT.Tick(m, pending+1)
						pending = 0
						if terr != nil {
							out, done := b.fail(m, terr, co, &tickLive)
							if done {
								return out
							}
							continue resync
						}
						if batcher != nil {
							tickGas = batcher.TickBudget()
						}
					}
				}
				if limited {
					if m.budget <= 0 {
						f.Blk, f.Idx = in.Blk, in.Idx+1
						if pending > 0 {
							terr := m.RT.Tick(m, pending)
							pending = 0
							if terr != nil {
								out, done := b.fail(m, terr, co, &tickLive)
								if done {
									return out
								}
								continue resync
							}
						}
						return Outcome{Kind: OutStepLimit}
					}
					m.budget--
				}
				m.Steps++
				// Component 2: the bin.
				v, ok := in.Bin.Eval(regs[in.A], regs[in.B])
				if !ok {
					// Unreachable (div/rem never fuse); kept for safety.
					f.Blk, f.Idx = in.Blk, in.Idx+1
					if pending > 0 {
						terr := m.RT.Tick(m, pending)
						pending = 0
						if terr != nil {
							out, done := b.fail(m, terr, co, &tickLive)
							if done {
								return out
							}
							continue resync
						}
					}
					out, done := b.fail(m, m.trapHere(ir.TrapDivZero, 0), co, &tickLive)
					if done {
						return out
					}
					continue resync
				}
				regs[in.Dst] = v
				m.Cycles += CostSimple
				pc++

			case bytecode.OpLoadBinStore:
				// Component 1: the load (flush deferred ticks first, as
				// for OpLoad).
				if pending > 0 {
					terr := m.RT.Tick(m, pending)
					pending = 0
					if terr != nil {
						f.Blk, f.Idx = in.Blk, in.Idx
						out, done := b.fail(m, terr, co, &tickLive)
						if done {
							return out
						}
						continue resync
					}
				}
				addr := regs[in.A] + in.Imm
				v, err := m.RT.Load(m, addr, in.Width)
				if err != nil {
					f.Blk, f.Idx = in.Blk, in.Idx
					if errors.Is(err, mem.ErrUnmapped) {
						err = m.trapHere(ir.TrapBadAccess, addr)
					} else if errors.Is(err, mem.ErrDomain) {
						err = m.trapHere(ir.TrapDomain, addr)
					}
					out, done := b.fail(m, err, co, &tickLive)
					if done {
						return out
					}
					continue resync
				}
				regs[in.Dst] = v
				m.Cycles += CostMem
				if tickLive {
					if tickGas > 0 {
						tickGas--
						pending++
					} else {
						f.Blk, f.Idx = in.Blk, in.Idx+1
						terr := m.RT.Tick(m, pending+1)
						pending = 0
						if terr != nil {
							out, done := b.fail(m, terr, co, &tickLive)
							if done {
								return out
							}
							continue resync
						}
						if batcher != nil {
							tickGas = batcher.TickBudget()
						}
					}
				}
				if limited {
					if m.budget <= 0 {
						f.Blk, f.Idx = in.Blk, in.Idx+1
						if pending > 0 {
							terr := m.RT.Tick(m, pending)
							pending = 0
							if terr != nil {
								out, done := b.fail(m, terr, co, &tickLive)
								if done {
									return out
								}
								continue resync
							}
						}
						return Outcome{Kind: OutStepLimit}
					}
					m.budget--
				}
				m.Steps++
				// Component 2: the bin.
				bv, ok := in.Bin.Eval(regs[in.C], regs[in.D])
				if !ok {
					// Unreachable (div/rem never fuse); kept for safety.
					f.Blk, f.Idx = in.Blk, in.Idx+1
					if pending > 0 {
						terr := m.RT.Tick(m, pending)
						pending = 0
						if terr != nil {
							out, done := b.fail(m, terr, co, &tickLive)
							if done {
								return out
							}
							continue resync
						}
					}
					out, done := b.fail(m, m.trapHere(ir.TrapDivZero, 0), co, &tickLive)
					if done {
						return out
					}
					continue resync
				}
				regs[in.B] = bv
				m.Cycles += CostSimple
				if tickLive {
					if tickGas > 0 {
						tickGas--
						pending++
					} else {
						f.Blk, f.Idx = in.Blk, in.Idx+2
						terr := m.RT.Tick(m, pending+1)
						pending = 0
						if terr != nil {
							out, done := b.fail(m, terr, co, &tickLive)
							if done {
								return out
							}
							continue resync
						}
						if batcher != nil {
							tickGas = batcher.TickBudget()
						}
					}
				}
				if limited {
					if m.budget <= 0 {
						f.Blk, f.Idx = in.Blk, in.Idx+2
						if pending > 0 {
							terr := m.RT.Tick(m, pending)
							pending = 0
							if terr != nil {
								out, done := b.fail(m, terr, co, &tickLive)
								if done {
									return out
								}
								continue resync
							}
						}
						return Outcome{Kind: OutStepLimit}
					}
					m.budget--
				}
				m.Steps++
				// Component 3: the store. The address register is re-read
				// (the bin may have clobbered it); deferred ticks flush
				// first, as for OpStore.
				if pending > 0 {
					terr := m.RT.Tick(m, pending)
					pending = 0
					if terr != nil {
						f.Blk, f.Idx = in.Blk, in.Idx+2
						out, done := b.fail(m, terr, co, &tickLive)
						if done {
							return out
						}
						continue resync
					}
				}
				m.Cycles += CostMem
				saddr := regs[in.A] + in.Imm
				if err := m.RT.Store(m, saddr, regs[in.B], in.Width, in.Stm); err != nil {
					f.Blk, f.Idx = in.Blk, in.Idx+2
					out, done := b.fail(m, m.storeError(err, saddr), co, &tickLive)
					if done {
						return out
					}
					continue resync
				}
				pc++

			case bytecode.OpCall:
				args := m.marshalArgs(code.Args(in), regs)
				m.Cycles += CostCall
				f.Blk, f.Idx = in.Blk, in.Idx+1 // return address
				if err := m.push(code.Callee(in), args, in.Dst); err != nil {
					f.Idx = in.Idx
					if pending > 0 {
						terr := m.RT.Tick(m, pending)
						pending = 0
						if terr != nil {
							out, done := b.fail(m, terr, co, &tickLive)
							if done {
								return out
							}
							continue resync
						}
					}
					out, done := b.fail(m, err, co, &tickLive)
					if done {
						return out
					}
					continue resync
				}
				f = &m.frames[len(m.frames)-1]
				regs = f.Regs
				code = code.CalleeCode(in)
				insts = code.Insts
				pc = code.EntryPC(f.Blk)

			case bytecode.OpLib:
				f.Blk, f.Idx = in.Blk, in.Idx
				if pending > 0 {
					terr := m.RT.Tick(m, pending)
					pending = 0
					if terr != nil {
						out, done := b.fail(m, terr, co, &tickLive)
						if done {
							return out
						}
						continue resync
					}
				}
				args := m.marshalArgs(code.Args(in), regs)
				name := code.Name(in)
				c0 := m.Cycles
				m.Cycles += CostLibBase
				ret, err := m.RT.LibCall(m, name, args, in.Site)
				if m.prof != nil {
					m.prof.Lib(name, in.Site, c0, m.Cycles, m.Steps)
				}
				if err != nil {
					out, done := b.fail(m, err, co, &tickLive)
					if done {
						return out
					}
					continue resync
				}
				// The runtime may have restored a snapshot during the
				// call; write the result through the refetched frame and
				// let the resync loop re-derive the position.
				f = &m.frames[len(m.frames)-1]
				if in.Dst >= 0 {
					f.Regs[in.Dst] = ret
				}
				f.Idx++
				tickLive = co == nil || co.TickLive()
				if tickLive {
					if terr := m.RT.Tick(m, 1); terr != nil {
						out, done := b.fail(m, terr, co, &tickLive)
						if done {
							return out
						}
					}
				}
				continue resync

			case bytecode.OpRet:
				f.Blk, f.Idx = in.Blk, in.Idx
				if pending > 0 {
					terr := m.RT.Tick(m, pending)
					pending = 0
					if terr != nil {
						out, done := b.fail(m, terr, co, &tickLive)
						if done {
							return out
						}
						continue resync
					}
				}
				m.Cycles += CostSimple
				err := m.doReturn(code.Src(in))
				if err != nil {
					out, done := b.fail(m, err, co, &tickLive)
					if done {
						return out
					}
					continue resync
				}
				// A bottom-frame return commits the pending transaction
				// (and a non-bottom one may flow-switch variants): refresh
				// liveness before the tick.
				tickLive = co == nil || co.TickLive()
				if tickLive {
					if terr := m.RT.Tick(m, 1); terr != nil {
						out, done := b.fail(m, terr, co, &tickLive)
						if done {
							return out
						}
					}
				}
				continue resync

			case bytecode.OpTrap:
				f.Blk, f.Idx = in.Blk, in.Idx
				if pending > 0 {
					terr := m.RT.Tick(m, pending)
					pending = 0
					if terr != nil {
						out, done := b.fail(m, terr, co, &tickLive)
						if done {
							return out
						}
						continue resync
					}
				}
				out, done := b.fail(m, m.trapHere(in.Imm, 0), co, &tickLive)
				if done {
					return out
				}
				continue resync

			case bytecode.OpTxBegin:
				f.Blk, f.Idx = in.Blk, in.Idx
				if pending > 0 {
					terr := m.RT.Tick(m, pending)
					pending = 0
					if terr != nil {
						out, done := b.fail(m, terr, co, &tickLive)
						if done {
							return out
						}
						continue resync
					}
				}
				if err := m.RT.TxBegin(m, in.Site, in.Imm); err != nil {
					out, done := b.fail(m, err, co, &tickLive)
					if done {
						return out
					}
					continue resync
				}
				f = &m.frames[len(m.frames)-1]
				f.Idx++
				tickLive = co == nil || co.TickLive()
				if tickLive {
					if terr := m.RT.Tick(m, 1); terr != nil {
						out, done := b.fail(m, terr, co, &tickLive)
						if done {
							return out
						}
					}
				}
				continue resync

			case bytecode.OpTxEnd:
				f.Blk, f.Idx = in.Blk, in.Idx
				if pending > 0 {
					terr := m.RT.Tick(m, pending)
					pending = 0
					if terr != nil {
						out, done := b.fail(m, terr, co, &tickLive)
						if done {
							return out
						}
						continue resync
					}
				}
				if err := m.RT.TxEnd(m); err != nil {
					out, done := b.fail(m, err, co, &tickLive)
					if done {
						return out
					}
					continue resync
				}
				f = &m.frames[len(m.frames)-1]
				f.Idx++
				tickLive = co == nil || co.TickLive()
				if tickLive {
					if terr := m.RT.Tick(m, 1); terr != nil {
						out, done := b.fail(m, terr, co, &tickLive)
						if done {
							return out
						}
					}
				}
				continue resync

			case bytecode.OpRegSave:
				f.Blk, f.Idx = in.Blk, in.Idx
				if pending > 0 {
					terr := m.RT.Tick(m, pending)
					pending = 0
					if terr != nil {
						out, done := b.fail(m, terr, co, &tickLive)
						if done {
							return out
						}
						continue resync
					}
				}
				m.RT.RegSave(m)
				f.Idx++
				if tickLive {
					if terr := m.RT.Tick(m, 1); terr != nil {
						out, done := b.fail(m, terr, co, &tickLive)
						if done {
							return out
						}
					}
				}
				continue resync

			case bytecode.OpGate:
				f.Blk, f.Idx = in.Blk, in.Idx
				if pending > 0 {
					terr := m.RT.Tick(m, pending)
					pending = 0
					if terr != nil {
						out, done := b.fail(m, terr, co, &tickLive)
						if done {
							return out
						}
						continue resync
					}
				}
				if err := m.doGate(code.Src(in)); err != nil {
					out, done := b.fail(m, err, co, &tickLive)
					if done {
						return out
					}
					continue resync
				}
				tickLive = co == nil || co.TickLive()
				if tickLive {
					if terr := m.RT.Tick(m, 1); terr != nil {
						out, done := b.fail(m, terr, co, &tickLive)
						if done {
							return out
						}
					}
				}
				continue resync

			default:
				f.Blk, f.Idx = in.Blk, in.Idx
				if pending > 0 {
					terr := m.RT.Tick(m, pending)
					pending = 0
					if terr != nil {
						out, done := b.fail(m, terr, co, &tickLive)
						if done {
							return out
						}
						continue resync
					}
				}
				out, done := b.fail(m, m.trapHere(ir.TrapBadCall, 0), co, &tickLive)
				if done {
					return out
				}
				continue resync
			}

			// Common tick tail for straight-line ops, branches and calls:
			// pc has advanced and the instruction retires against the
			// interrupt model — deferred while the batching budget lasts,
			// delivered (with the frame position synced) when the next
			// tick may observe something.
			if tickLive {
				if tickGas > 0 {
					tickGas--
					pending++
				} else {
					nin := &insts[pc]
					f.Blk, f.Idx = nin.Blk, nin.Idx
					terr := m.RT.Tick(m, pending+1)
					pending = 0
					if terr != nil {
						out, done := b.fail(m, terr, co, &tickLive)
						if done {
							return out
						}
						continue resync
					}
					if batcher != nil {
						tickGas = batcher.TickBudget()
					}
				}
			}
		}
	}
}
