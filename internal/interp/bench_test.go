package interp_test

import (
	"testing"

	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/mem"
	"github.com/firestarter-go/firestarter/internal/minic"
)

// benchMachine compiles src and returns a machine ready to run. The
// benchmark programs loop forever, so each b.N iteration resumes the same
// machine for a fixed step budget.
func benchMachine(b *testing.B, src string) *interp.Machine {
	b.Helper()
	prog, err := minic.Compile(src, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		b.Fatal(err)
	}
	o := libsim.New(mem.NewSpace())
	m, err := interp.New(prog, o, nil)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// stepsPerIter is the instruction budget each benchmark iteration executes.
const stepsPerIter = 10_000

// BenchmarkCallReturn stresses the call/return path: the fast path must
// execute OpCall without per-instruction function lookups and without
// allocating argument or register slices (allocs/op must be ~0).
func BenchmarkCallReturn(b *testing.B) {
	m := benchMachine(b, `
int add3(int a, int b, int c) { return a + b + c; }
int main() {
	int s = 0;
	while (1) { s = add3(s, 1, 2); }
	return s;
}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := m.Run(stepsPerIter); out.Kind != interp.OutStepLimit {
			b.Fatalf("outcome = %v", out.Kind)
		}
	}
	b.ReportMetric(float64(stepsPerIter), "steps/op")
}

// BenchmarkDeepCalls exercises frame pooling across a deeper stack.
func BenchmarkDeepCalls(b *testing.B) {
	m := benchMachine(b, `
int leaf(int x) { return x + 1; }
int mid(int x) { return leaf(x) + leaf(x); }
int outer(int x) { return mid(x) + mid(x); }
int main() {
	int s = 0;
	while (1) { s = outer(s); }
	return s;
}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := m.Run(stepsPerIter); out.Kind != interp.OutStepLimit {
			b.Fatalf("outcome = %v", out.Kind)
		}
	}
	b.ReportMetric(float64(stepsPerIter), "steps/op")
}

// BenchmarkLibCall stresses the library-call path (argument marshalling
// must not allocate).
func BenchmarkLibCall(b *testing.B) {
	m := benchMachine(b, `
int main() {
	int s = 0;
	while (1) { s = htons(s); }
	return s;
}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := m.Run(stepsPerIter); out.Kind != interp.OutStepLimit {
			b.Fatalf("outcome = %v", out.Kind)
		}
	}
	b.ReportMetric(float64(stepsPerIter), "steps/op")
}

// BenchmarkGlobalAddr stresses global-address materialization, which the
// fast path resolves at load time instead of a per-instruction map lookup.
func BenchmarkGlobalAddr(b *testing.B) {
	m := benchMachine(b, `
int counter = 0;
int main() {
	while (1) { counter = counter + 1; }
	return counter;
}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := m.Run(stepsPerIter); out.Kind != interp.OutStepLimit {
			b.Fatalf("outcome = %v", out.Kind)
		}
	}
	b.ReportMetric(float64(stepsPerIter), "steps/op")
}
