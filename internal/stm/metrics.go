package stm

import "github.com/firestarter-go/firestarter/internal/obsv"

// Publish copies the undo log's counters into a metrics registry.
// Publishing happens at collection time — the store/commit hot paths never
// touch the registry, so enabling metrics changes no charged cycle.
func (s Stats) Publish(reg *obsv.Registry, labels ...obsv.Label) {
	reg.Counter("stm.begins", labels...).Add(s.Begins)
	reg.Counter("stm.commits", labels...).Add(s.Commits)
	reg.Counter("stm.rollbacks", labels...).Add(s.Rollbacks)
	reg.Counter("stm.total_stores", labels...).Add(s.TotalStores)
	reg.Gauge("stm.peak_log_len", labels...).SetMax(int64(s.PeakLogLen))
}
