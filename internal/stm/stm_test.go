package stm

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/firestarter-go/firestarter/internal/mem"
)

func newSpace(t *testing.T) *mem.Space {
	t.Helper()
	s := mem.NewSpace()
	if err := s.Map(mem.HeapBase, 1<<16); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCommitKeepsStores(t *testing.T) {
	s := newSpace(t)
	l := New(s)
	l.Begin()
	if err := l.Store(mem.HeapBase, 5, 8); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Load(mem.HeapBase, 8)
	if v != 5 {
		t.Fatalf("after commit: %d", v)
	}
	if l.Active() {
		t.Error("log still active after commit")
	}
}

func TestRollbackRestoresReverseOrder(t *testing.T) {
	s := newSpace(t)
	if err := s.Store(mem.HeapBase, 10, 8); err != nil {
		t.Fatal(err)
	}
	l := New(s)
	l.Begin()
	// Two stores to the same address: rollback must restore the
	// *original* value, which only reverse-order replay achieves.
	if err := l.Store(mem.HeapBase, 20, 8); err != nil {
		t.Fatal(err)
	}
	if err := l.Store(mem.HeapBase, 30, 8); err != nil {
		t.Fatal(err)
	}
	n, err := l.Rollback()
	if err != nil || n != 2 {
		t.Fatalf("Rollback = %d, %v", n, err)
	}
	v, _ := s.Load(mem.HeapBase, 8)
	if v != 10 {
		t.Fatalf("after rollback: %d, want 10", v)
	}
}

func TestMixedWidthRollback(t *testing.T) {
	s := newSpace(t)
	if err := s.Store(mem.HeapBase, 0x1111111111111111, 8); err != nil {
		t.Fatal(err)
	}
	l := New(s)
	l.Begin()
	if err := l.Store(mem.HeapBase+2, 0xff, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Store(mem.HeapBase+4, 0xabcd, 2); err != nil {
		t.Fatal(err)
	}
	if err := l.Store(mem.HeapBase, 0, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Rollback(); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Load(mem.HeapBase, 8)
	if v != 0x1111111111111111 {
		t.Fatalf("after rollback: %#x", v)
	}
}

func TestStoreOutsideTransaction(t *testing.T) {
	s := newSpace(t)
	l := New(s)
	if err := l.Store(mem.HeapBase, 1, 8); err == nil {
		t.Error("store outside transaction should fail")
	}
	if err := l.Commit(); err == nil {
		t.Error("commit outside transaction should fail")
	}
	if _, err := l.Rollback(); err == nil {
		t.Error("rollback outside transaction should fail")
	}
}

func TestNestedBeginPanics(t *testing.T) {
	s := newSpace(t)
	l := New(s)
	l.Begin()
	defer func() {
		if recover() == nil {
			t.Error("nested Begin did not panic")
		}
	}()
	l.Begin()
}

func TestFaultingStoreKeepsLogConsistent(t *testing.T) {
	s := newSpace(t)
	if err := s.Store(mem.HeapBase, 7, 8); err != nil {
		t.Fatal(err)
	}
	l := New(s)
	l.Begin()
	if err := l.Store(mem.HeapBase, 8, 8); err != nil {
		t.Fatal(err)
	}
	// Store to unmapped memory: the access error surfaces, the log keeps
	// only the successful store.
	if err := l.Store(0x10, 1, 8); !errors.Is(err, mem.ErrUnmapped) {
		t.Fatalf("expected unmapped error, got %v", err)
	}
	if l.Len() != 1 {
		t.Fatalf("log length = %d, want 1", l.Len())
	}
	if _, err := l.Rollback(); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Load(mem.HeapBase, 8)
	if v != 7 {
		t.Fatalf("after rollback: %d", v)
	}
}

func TestRollbackSkipsUnmappedEntries(t *testing.T) {
	s := newSpace(t)
	l := New(s)
	l.Begin()
	if err := l.Store(mem.HeapBase+mem.PageSize, 9, 8); err != nil {
		t.Fatal(err)
	}
	// Program unmaps the page mid-transaction (e.g., via an embedded
	// munmap libcall). Rollback must not fault.
	if err := s.Unmap(mem.HeapBase+mem.PageSize, mem.PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Rollback(); err != nil {
		t.Fatalf("rollback over unmapped entry: %v", err)
	}
}

func TestStats(t *testing.T) {
	s := newSpace(t)
	l := New(s)
	for i := 0; i < 3; i++ {
		l.Begin()
		for j := 0; j < 5; j++ {
			if err := l.Store(mem.HeapBase+int64(j*8), int64(j), 8); err != nil {
				t.Fatal(err)
			}
		}
		if i == 2 {
			if _, err := l.Rollback(); err != nil {
				t.Fatal(err)
			}
		} else if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Begins != 3 || st.Commits != 2 || st.Rollbacks != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.TotalStores != 15 || st.PeakLogLen != 5 {
		t.Errorf("stats = %+v", st)
	}
	if l.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive after use")
	}
	l.ResetStats()
	if l.Stats().Begins != 0 {
		t.Error("ResetStats did not clear")
	}
}

// Property: any store sequence followed by rollback leaves memory
// byte-identical to the pre-transaction state.
func TestRollbackRestoresExactlyProperty(t *testing.T) {
	s := newSpace(t)
	for i := int64(0); i < 2048; i += 8 {
		if err := s.Store(mem.HeapBase+i, i^0x55aa, 8); err != nil {
			t.Fatal(err)
		}
	}
	l := New(s)
	f := func(offsets []uint16, vals []int64, widths []uint8) bool {
		l.Begin()
		n := len(offsets)
		if len(vals) < n {
			n = len(vals)
		}
		if len(widths) < n {
			n = len(widths)
		}
		widthOf := []int{1, 2, 4, 8}
		for i := 0; i < n; i++ {
			addr := mem.HeapBase + int64(offsets[i]%2040)
			if err := l.Store(addr, vals[i], widthOf[widths[i]%4]); err != nil {
				return false
			}
		}
		if _, err := l.Rollback(); err != nil {
			return false
		}
		for i := int64(0); i < 2048; i += 8 {
			v, err := s.Load(mem.HeapBase+i, 8)
			if err != nil || v != i^0x55aa {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
