// Package stm implements the undo-log-based software transactional memory
// FIRestarter falls back to when hardware transactions abort (§IV-A of the
// paper, after Vogt et al.'s lightweight memory checkpointing design).
//
// Every store inside an STM-instrumented region first appends the
// destination's old value to the undo log, then performs the store. To roll
// back, the log is walked in reverse, restoring each location. Unlike the
// HTM model, the log is unbounded — STM transactions never abort for
// capacity reasons, which is exactly why it maximizes the recovery surface
// at a per-store instrumentation cost the paper's Fig. 7 quantifies.
package stm

import (
	"fmt"

	"github.com/firestarter-go/firestarter/internal/mem"
)

// entry is one undo record: enough to restore a single store.
type entry struct {
	addr  int64
	old   int64
	width int
}

// Stats aggregates undo-log behaviour for the memory-overhead experiment.
type Stats struct {
	Begins      int64
	Commits     int64
	Rollbacks   int64
	TotalStores int64
	PeakLogLen  int
}

// Log is a software transaction's undo log attached to an address space.
// The zero value is not usable; create with New. A Log is reused across
// transactions (Begin resets it) to avoid per-transaction allocation.
type Log struct {
	space   *mem.Space
	entries []entry
	active  bool
	stats   Stats
}

// New returns an undo log bound to the given address space.
func New(space *mem.Space) *Log {
	return &Log{space: space, entries: make([]entry, 0, 256)}
}

// Stats returns a snapshot of accumulated statistics.
func (l *Log) Stats() Stats { return l.stats }

// ResetStats zeroes accumulated statistics.
func (l *Log) ResetStats() { l.stats = Stats{} }

// Active reports whether a transaction is in progress.
func (l *Log) Active() bool { return l.active }

// Len returns the current number of undo entries.
func (l *Log) Len() int { return len(l.entries) }

// Begin starts a software transaction. Beginning while one is active is a
// programming error in the runtime and panics.
func (l *Log) Begin() {
	if l.active {
		panic("stm: nested Begin")
	}
	l.entries = l.entries[:0]
	l.active = true
	l.stats.Begins++
}

// Store logs the old value at addr and then performs the store. A store to
// unmapped memory returns the access error without growing the log (the
// crash handler will roll back what is logged so far).
func (l *Log) Store(addr, val int64, width int) error {
	if !l.active {
		return fmt.Errorf("stm: store outside transaction")
	}
	old, err := l.space.Load(addr, width)
	if err != nil {
		return err
	}
	l.entries = append(l.entries, entry{addr: addr, old: old, width: width})
	l.stats.TotalStores++
	if len(l.entries) > l.stats.PeakLogLen {
		l.stats.PeakLogLen = len(l.entries)
	}
	return l.space.Store(addr, val, width)
}

// Commit ends the transaction, making all stores permanent.
func (l *Log) Commit() error {
	if !l.active {
		return fmt.Errorf("stm: commit outside transaction")
	}
	l.active = false
	l.entries = l.entries[:0]
	l.stats.Commits++
	return nil
}

// Rollback walks the undo log in reverse, restoring every modified
// location, and ends the transaction. Restores to memory the program
// unmapped mid-transaction are skipped (compensation actions own that
// state). It returns the number of entries undone.
func (l *Log) Rollback() (int, error) {
	if !l.active {
		return 0, fmt.Errorf("stm: rollback outside transaction")
	}
	n := len(l.entries)
	for i := n - 1; i >= 0; i-- {
		e := l.entries[i]
		if !l.space.Mapped(e.addr, int64(e.width)) {
			continue
		}
		if err := l.space.Store(e.addr, e.old, e.width); err != nil {
			return n - 1 - i, fmt.Errorf("stm: rollback store at %#x: %w", e.addr, err)
		}
	}
	l.active = false
	l.entries = l.entries[:0]
	l.stats.Rollbacks++
	return n, nil
}

// MemoryBytes estimates the log's current memory footprint, charged to the
// simulated RSS for the Fig. 9 experiment (each entry is 24 bytes: address,
// old value, width word).
func (l *Log) MemoryBytes() int64 {
	return int64(cap(l.entries)) * 24
}
