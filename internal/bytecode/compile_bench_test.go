package bytecode

import (
	"testing"

	"github.com/firestarter-go/firestarter/internal/apps"
)

func BenchmarkCompileNginx(b *testing.B) {
	prog, err := apps.Nginx().Compile()
	if err != nil {
		b.Fatal(err)
	}
	if err := prog.Resolve(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(prog); err != nil {
			b.Fatal(err)
		}
	}
}
