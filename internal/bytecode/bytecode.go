// Package bytecode lowers ir programs to a flat register bytecode: every
// function's basic blocks are threaded into a single instruction stream
// with precomputed jump targets, adjacent instructions are fused into
// superinstructions (compare-and-branch, const-into-bin, load-op-store),
// and call/global references are resolved to direct pointers. The
// interpreter's bytecode backend (interp.NewBytecodeBackend) executes this
// format; the tree-walking interpreter remains the reference semantics.
//
// The lowering is a pure representation change. Every source instruction
// is still retired individually by the executor — one step-budget unit,
// one Steps increment, one cost-model charge and one runtime Tick per
// component — so cycle counts, HTM interrupt boundaries, snapshots and
// trap positions are bit-identical to the tree-walker. Fusion never
// crosses an instruction that can interact with the runtime's control
// flow: OpCall/OpLib/OpGate/OpTxBegin/OpTxEnd/OpRegSave and div/rem (which
// can trap mid-pattern) always compile to single bytecode instructions.
//
// Every bytecode instruction records the (block, index) coordinates of its
// first source instruction, and Code.PCAt maps coordinates back to the
// covering instruction. Frame positions therefore stay in source
// coordinates: snapshots taken under one execution strategy restore under
// the other, and a position in the middle of a fused region (a step budget
// can expire between components) is simply not a bytecode boundary — the
// backend finishes the region one source instruction at a time and
// re-enters the stream at the next boundary.
//
// Compile reads the program once and resolves against its current shape;
// programs mutated after compilation (a test replacing a callee, say) must
// use the tree-walker.
package bytecode

import (
	"fmt"

	"github.com/firestarter-go/firestarter/internal/ir"
)

// Op enumerates bytecode opcodes: the ir opcodes plus the fused
// superinstructions.
type Op uint8

// Bytecode opcodes.
const (
	OpInvalid Op = iota
	OpConst
	OpMov
	OpBin
	OpNeg
	OpNot
	OpLoad
	OpStore
	OpStmStore
	OpFrameAddr
	OpGlobalAddr
	OpCall
	OpLib
	OpJmp
	OpBr
	OpRet
	OpTrap
	OpTxBegin
	OpTxEnd
	OpRegSave
	OpGate

	// OpCmpBr fuses OpBin (any operator except div/rem) with the block's
	// terminating OpBr branching on the bin's destination register.
	OpCmpBr
	// OpConstBin fuses OpConst with an immediately following OpBin (not
	// div/rem) reading the constant's register.
	OpConstBin
	// OpLoadBinStore fuses OpLoad + OpBin (not div/rem) + OpStore (or
	// OpStmStore) where the store writes the bin result back through the
	// load's address register, offset and width.
	OpLoadBinStore
)

var opNames = map[Op]string{
	OpConst: "const", OpMov: "mov", OpBin: "bin", OpNeg: "neg", OpNot: "not",
	OpLoad: "load", OpStore: "store", OpStmStore: "stmstore",
	OpFrameAddr: "frameaddr", OpGlobalAddr: "globaladdr", OpCall: "call",
	OpLib: "lib", OpJmp: "jmp", OpBr: "br", OpRet: "ret", OpTrap: "trap",
	OpTxBegin: "txbegin", OpTxEnd: "txend", OpRegSave: "regsave",
	OpGate: "gate", OpCmpBr: "cmp+br", OpConstBin: "const+bin",
	OpLoadBinStore: "load+bin+store",
}

// String returns the opcode's mnemonic.
func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("bcop(%d)", int(op))
}

// Inst is one flat-stream instruction. Fields are interpreted per-opcode:
//
//   - single instructions carry their ir.Instr fields under the same
//     names (Dst/A/B/Imm/Width/Bin/Site), with Then/Else rewritten from
//     block IDs to instruction-stream pcs, OpGlobalAddr's resolved
//     address baked into Imm, and call/libcall names, argument lists and
//     call targets interned into the owning Code's side tables;
//   - OpCmpBr: Dst/A/B/Bin are the compare, Then/Else the branch pcs
//     (the branch register is the compare's Dst);
//   - OpConstBin: C/Imm are the constant's register and value, Dst/A/B/Bin
//     the bin;
//   - OpLoadBinStore: A/Imm/Width address the memory cell, Dst is the
//     load's destination, C/D/Bin the bin operands and operator, B the bin
//     destination (the value stored back), Stm marks an OpStmStore.
//
// Inst is deliberately pointer-free: a compiled stream is noscan memory
// the garbage collector never walks, so holding many compiled programs
// live (one per booted machine) adds no GC scan work.
type Inst struct {
	Op    Op
	Dst   int
	A, B  int
	C, D  int
	Imm   int64
	Width int
	Bin   ir.BinKind
	Then  int // pc target (OpJmp/OpBr/OpCmpBr)
	Else  int
	Site  int
	Stm   bool // OpLoadBinStore: store component is undo-logged

	// Interned references, resolved through the owning Code's side
	// tables: NameIdx indexes Code.names (OpCall/OpLib), CalleeIdx
	// indexes Code.callFns/callCodes (OpCall), ArgOff/ArgN slice
	// Code.argPool (OpCall/OpLib).
	NameIdx   int32
	CalleeIdx int32
	ArgOff    int32
	ArgN      int32

	// Blk/Idx are the source coordinates of the first component; N is the
	// number of source instructions this instruction retires (1 unless
	// fused). BlockStart marks instructions whose first component opens a
	// basic block (the block-profiling hook point).
	Blk, Idx   int
	N          int
	BlockStart bool
}

// Code is one function's compiled stream.
type Code struct {
	Fn    *ir.Func
	Insts []Inst

	// Side tables for Inst's interned references (see Inst). Keeping the
	// pointers here, out of the instruction stream, makes Insts noscan.
	names     []string
	callFns   []*ir.Func
	callCodes []*Code // parallel to callFns, linked by Compile's second pass
	argPool   []int

	blockPC []int     // block ID -> pc of the block's first instruction
	pcAt    [][]int32 // [block][source idx] -> pc of the covering instruction
}

// Name returns in's interned call/libcall name.
func (c *Code) Name(in *Inst) string { return c.names[in.NameIdx] }

// Args returns in's interned argument registers.
func (c *Code) Args(in *Inst) []int { return c.argPool[in.ArgOff : in.ArgOff+in.ArgN] }

// Callee returns in's interned call target.
func (c *Code) Callee(in *Inst) *ir.Func { return c.callFns[in.CalleeIdx] }

// CalleeCode returns the compiled stream of in's call target.
func (c *Code) CalleeCode(in *Inst) *Code { return c.callCodes[in.CalleeIdx] }

// Src returns in's first fused source instruction; the executor uses it
// for the return and gate paths, which are shared with the tree-walker.
func (c *Code) Src(in *Inst) *ir.Instr { return &c.Fn.Blocks[in.Blk].Instrs[in.Idx] }

func (c *Code) internName(name string) int32 {
	for i, n := range c.names {
		if n == name {
			return int32(i)
		}
	}
	c.names = append(c.names, name)
	return int32(len(c.names) - 1)
}

func (c *Code) internCall(fn *ir.Func) int32 {
	for i, f := range c.callFns {
		if f == fn {
			return int32(i)
		}
	}
	c.callFns = append(c.callFns, fn)
	return int32(len(c.callFns) - 1)
}

func (c *Code) internArgs(args []int) (off, n int32) {
	off = int32(len(c.argPool))
	c.argPool = append(c.argPool, args...)
	return off, int32(len(args))
}

// EntryPC returns the pc of the given block's first instruction.
func (c *Code) EntryPC(blk int) int { return c.blockPC[blk] }

// PCAt maps source coordinates to the covering instruction's pc. aligned
// reports whether the position is an instruction boundary (the first
// component); a mid-fusion position, or one outside the function, returns
// aligned=false and the caller must fall back to source-level stepping.
func (c *Code) PCAt(blk, idx int) (pc int, aligned bool) {
	if blk < 0 || blk >= len(c.pcAt) {
		return 0, false
	}
	row := c.pcAt[blk]
	if idx < 0 || idx >= len(row) {
		return 0, false
	}
	pc = int(row[idx])
	return pc, c.Insts[pc].Idx == idx && c.Insts[pc].Blk == blk
}

// Program is a compiled ir.Program.
type Program struct {
	// Src is the source program; the executor validates that a machine
	// runs the same program instance the bytecode was compiled from.
	Src *ir.Program

	codes map[*ir.Func]*Code
}

// Code returns the compiled stream for f (nil for functions the compiled
// program does not know, e.g. after post-compile mutation).
func (p *Program) Code(f *ir.Func) *Code { return p.codes[f] }

// Compile lowers a resolved program (see ir.Program.Resolve) to bytecode.
func Compile(src *ir.Program) (*Program, error) {
	p := &Program{Src: src, codes: make(map[*ir.Func]*Code, len(src.Funcs))}
	for _, name := range src.FuncNames() {
		f := src.Funcs[name]
		c, err := compileFunc(f)
		if err != nil {
			return nil, fmt.Errorf("bytecode: %s: %w", name, err)
		}
		p.codes[f] = c
	}
	// Second pass: cross-function call targets become direct Code
	// pointers so the executor switches streams without a map lookup.
	for name, c := range p.codes {
		c.callCodes = make([]*Code, len(c.callFns))
		for i, fn := range c.callFns {
			cc := p.codes[fn]
			if cc == nil {
				return nil, fmt.Errorf("bytecode: %s calls %q outside the program", name.Name, fn.Name)
			}
			c.callCodes[i] = cc
		}
	}
	return p, nil
}

func compileFunc(f *ir.Func) (*Code, error) {
	c := &Code{
		Fn:      f,
		blockPC: make([]int, len(f.Blocks)),
		pcAt:    make([][]int32, len(f.Blocks)),
	}
	for bi, b := range f.Blocks {
		if b.ID != bi {
			return nil, fmt.Errorf("block %d has ID %d (layout requires ID == index)", bi, b.ID)
		}
		c.blockPC[bi] = len(c.Insts)
		row := make([]int32, len(b.Instrs))
		for i := 0; i < len(b.Instrs); {
			pc := len(c.Insts)
			inst, n, err := translate(c, b, i)
			if err != nil {
				return nil, fmt.Errorf("b%d.%d: %w", b.ID, i, err)
			}
			inst.Blk, inst.Idx, inst.N = b.ID, i, n
			inst.BlockStart = i == 0
			c.Insts = append(c.Insts, inst)
			for k := 0; k < n; k++ {
				row[i+k] = int32(pc)
			}
			i += n
		}
		c.pcAt[bi] = row
	}
	// Patch branch targets from block IDs to stream pcs.
	for i := range c.Insts {
		in := &c.Insts[i]
		switch in.Op {
		case OpJmp:
			in.Then = c.blockPC[in.Then]
		case OpBr, OpCmpBr:
			in.Then = c.blockPC[in.Then]
			in.Else = c.blockPC[in.Else]
		}
	}
	return c, nil
}

// fusableBin reports whether a binary operator is safe inside a fused
// superinstruction: div/rem can trap between components, so they always
// compile alone.
func fusableBin(b ir.BinKind) bool { return b != ir.BinDiv && b != ir.BinRem }

// translate compiles the instruction at b.Instrs[i], fusing with its
// successors when a superinstruction pattern matches. HTM/STM variant
// clones are instruction-parallel with only OpStore<->OpStmStore (and
// branch-target) differences, and the matcher treats the two store kinds
// identically, so both clones fuse at the same boundaries — which keeps
// the interpreter's same-index flow switches landing on boundaries.
func translate(c *Code, b *ir.Block, i int) (Inst, int, error) {
	ins := b.Instrs
	in := &ins[i]

	// load-op-store: read-modify-write of one memory cell.
	if in.Op == ir.OpLoad && i+2 < len(ins) {
		bn, st := &ins[i+1], &ins[i+2]
		if bn.Op == ir.OpBin && fusableBin(bn.Bin) &&
			(st.Op == ir.OpStore || st.Op == ir.OpStmStore) &&
			st.A == in.A && st.Imm == in.Imm && st.Width == in.Width &&
			st.B == bn.Dst {
			return Inst{
				Op: OpLoadBinStore, A: in.A, Imm: in.Imm, Width: in.Width,
				Dst: in.Dst, C: bn.A, D: bn.B, Bin: bn.Bin, B: bn.Dst,
				Stm: st.Op == ir.OpStmStore,
			}, 3, nil
		}
	}

	// compare-and-branch: a bin feeding the block's terminator.
	if in.Op == ir.OpBin && fusableBin(in.Bin) && i+1 == len(ins)-1 &&
		ins[i+1].Op == ir.OpBr && ins[i+1].A == in.Dst {
		br := &ins[i+1]
		return Inst{
			Op: OpCmpBr, Dst: in.Dst, A: in.A, B: in.B, Bin: in.Bin,
			Then: br.Then, Else: br.Else,
		}, 2, nil
	}

	// const-into-bin: an immediate operand materialized just before use.
	if in.Op == ir.OpConst && i+1 < len(ins) {
		bn := &ins[i+1]
		if bn.Op == ir.OpBin && fusableBin(bn.Bin) &&
			(bn.A == in.Dst || bn.B == in.Dst) {
			return Inst{
				Op: OpConstBin, C: in.Dst, Imm: in.Imm,
				Dst: bn.Dst, A: bn.A, B: bn.B, Bin: bn.Bin,
			}, 2, nil
		}
	}

	inst, err := single(c, in)
	return inst, 1, err
}

func single(c *Code, in *ir.Instr) (Inst, error) {
	switch in.Op {
	case ir.OpConst:
		return Inst{Op: OpConst, Dst: in.Dst, Imm: in.Imm}, nil
	case ir.OpMov:
		return Inst{Op: OpMov, Dst: in.Dst, A: in.A}, nil
	case ir.OpBin:
		return Inst{Op: OpBin, Dst: in.Dst, A: in.A, B: in.B, Bin: in.Bin}, nil
	case ir.OpNeg:
		return Inst{Op: OpNeg, Dst: in.Dst, A: in.A}, nil
	case ir.OpNot:
		return Inst{Op: OpNot, Dst: in.Dst, A: in.A}, nil
	case ir.OpLoad:
		return Inst{Op: OpLoad, Dst: in.Dst, A: in.A, Imm: in.Imm, Width: in.Width}, nil
	case ir.OpStore:
		return Inst{Op: OpStore, A: in.A, B: in.B, Imm: in.Imm, Width: in.Width}, nil
	case ir.OpStmStore:
		return Inst{Op: OpStmStore, A: in.A, B: in.B, Imm: in.Imm, Width: in.Width}, nil
	case ir.OpFrameAddr:
		return Inst{Op: OpFrameAddr, Dst: in.Dst, Imm: in.Imm}, nil
	case ir.OpGlobalAddr:
		if in.Global == nil {
			return Inst{}, fmt.Errorf("unresolved global %q (run ir.Program.Resolve before Compile)", in.Name)
		}
		return Inst{Op: OpGlobalAddr, Dst: in.Dst, Imm: in.Global.Addr}, nil
	case ir.OpCall:
		if in.Callee == nil {
			return Inst{}, fmt.Errorf("unresolved callee %q (run ir.Program.Resolve before Compile)", in.Name)
		}
		off, n := c.internArgs(in.Args)
		return Inst{
			Op: OpCall, Dst: in.Dst,
			NameIdx: c.internName(in.Name), CalleeIdx: c.internCall(in.Callee),
			ArgOff: off, ArgN: n,
		}, nil
	case ir.OpLib:
		off, n := c.internArgs(in.Args)
		return Inst{
			Op: OpLib, Dst: in.Dst, Site: in.Site,
			NameIdx: c.internName(in.Name), ArgOff: off, ArgN: n,
		}, nil
	case ir.OpJmp:
		return Inst{Op: OpJmp, Then: in.Then}, nil
	case ir.OpBr:
		return Inst{Op: OpBr, A: in.A, Then: in.Then, Else: in.Else}, nil
	case ir.OpRet:
		return Inst{Op: OpRet, A: in.A}, nil
	case ir.OpTrap:
		return Inst{Op: OpTrap, Imm: in.Imm}, nil
	case ir.OpTxBegin:
		return Inst{Op: OpTxBegin, Site: in.Site, Imm: in.Imm}, nil
	case ir.OpTxEnd:
		return Inst{Op: OpTxEnd}, nil
	case ir.OpRegSave:
		return Inst{Op: OpRegSave}, nil
	case ir.OpGate:
		// Then/Else stay on Src: the gate path re-enters via source
		// coordinates (it snapshots and may divert variants).
		return Inst{Op: OpGate, Site: in.Site, Dst: in.Dst}, nil
	default:
		return Inst{}, fmt.Errorf("unknown opcode %d", int(in.Op))
	}
}
