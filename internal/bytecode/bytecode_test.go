package bytecode

import (
	"math"
	"testing"

	"github.com/firestarter-go/firestarter/internal/ir"
)

// buildLoopProgram mirrors the interp package's fusion test program: a
// counting loop whose head fuses to cmp+br and whose body contains a
// load-bin-store and a const+bin.
func buildLoopProgram(t *testing.T) *ir.Program {
	t.Helper()
	p := ir.NewProgram()
	p.AddGlobal("g", 8, nil)
	f := &ir.Func{Name: "main", NumRegs: 8}
	b0 := f.NewBlock("entry")
	b0.Instrs = []ir.Instr{
		{Op: ir.OpGlobalAddr, Dst: 0, Name: "g"},
		{Op: ir.OpConst, Dst: 1, Imm: 0},
		{Op: ir.OpConst, Dst: 2, Imm: 10},
		{Op: ir.OpJmp, Then: 1},
	}
	b1 := f.NewBlock("head")
	b1.Instrs = []ir.Instr{
		{Op: ir.OpBin, Dst: 3, A: 1, B: 2, Bin: ir.BinLt},
		{Op: ir.OpBr, A: 3, Then: 2, Else: 3},
	}
	b2 := f.NewBlock("body")
	b2.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: 6, Imm: 3},
		{Op: ir.OpLoad, Dst: 4, A: 0, Width: 8},
		{Op: ir.OpBin, Dst: 5, A: 4, B: 6, Bin: ir.BinAdd},
		{Op: ir.OpStore, A: 0, B: 5, Width: 8},
		{Op: ir.OpConst, Dst: 7, Imm: 1},
		{Op: ir.OpBin, Dst: 1, A: 1, B: 7, Bin: ir.BinAdd},
		{Op: ir.OpJmp, Then: 1},
	}
	b3 := f.NewBlock("exit")
	b3.Instrs = []ir.Instr{
		{Op: ir.OpLoad, Dst: 4, A: 0, Width: 8},
		{Op: ir.OpRet, A: 4},
	}
	p.AddFunc(f)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	return p
}

func ops(c *Code, from, to int) []Op {
	var out []Op
	for _, in := range c.Insts[from:to] {
		out = append(out, in.Op)
	}
	return out
}

func TestCompileFusesSuperinstructions(t *testing.T) {
	p := buildLoopProgram(t)
	bp, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	c := bp.Code(p.Funcs["main"])
	if c == nil {
		t.Fatal("no code for main")
	}
	want := []Op{
		// entry
		OpGlobalAddr, OpConst, OpConst, OpJmp,
		// head: bin+br fused
		OpCmpBr,
		// body: const (unfusable: next op is a load), load+bin+store,
		// const+bin, jmp
		OpConst, OpLoadBinStore, OpConstBin, OpJmp,
		// exit
		OpLoad, OpRet,
	}
	got := ops(c, 0, len(c.Insts))
	if len(got) != len(want) {
		t.Fatalf("inst stream = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("inst %d = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}

	// Jump targets were rewritten to pcs.
	if c.Insts[3].Then != c.EntryPC(1) {
		t.Errorf("entry jmp -> pc %d, want head entry %d", c.Insts[3].Then, c.EntryPC(1))
	}
	cb := c.Insts[4]
	if cb.Then != c.EntryPC(2) || cb.Else != c.EntryPC(3) {
		t.Errorf("cmp+br targets = %d/%d, want %d/%d", cb.Then, cb.Else, c.EntryPC(2), c.EntryPC(3))
	}

	// Component counts and source coordinates.
	lbs := c.Insts[6]
	if lbs.N != 3 || lbs.Blk != 2 || lbs.Idx != 1 {
		t.Errorf("load-bin-store N/Blk/Idx = %d/%d/%d, want 3/2/1", lbs.N, lbs.Blk, lbs.Idx)
	}
	if lbs.Stm {
		t.Errorf("plain store marked stm")
	}
}

func TestPCAtAlignment(t *testing.T) {
	p := buildLoopProgram(t)
	bp, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	c := bp.Code(p.Funcs["main"])

	// Every source coordinate maps to its covering instruction; only
	// first components are aligned.
	f := p.Funcs["main"]
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			pc, aligned := c.PCAt(b.ID, i)
			in := c.Insts[pc]
			if in.Blk != b.ID || i < in.Idx || i >= in.Idx+in.N {
				t.Fatalf("PCAt(%d,%d) -> pc %d covering b%d.%d+%d", b.ID, i, pc, in.Blk, in.Idx, in.N)
			}
			if aligned != (i == in.Idx) {
				t.Fatalf("PCAt(%d,%d) aligned=%v, covering starts at %d", b.ID, i, aligned, in.Idx)
			}
		}
	}

	// Out-of-range coordinates are never aligned.
	if _, aligned := c.PCAt(-1, 0); aligned {
		t.Error("negative block aligned")
	}
	if _, aligned := c.PCAt(99, 0); aligned {
		t.Error("unknown block aligned")
	}
	if _, aligned := c.PCAt(0, 99); aligned {
		t.Error("past-end index aligned")
	}
}

func TestCompileStmCloneFusesIdentically(t *testing.T) {
	// An HTM block and its STM clone (store -> stmstore) must fuse at the
	// same boundaries, or the interpreter's same-index flow switches would
	// land mid-superinstruction.
	p := ir.NewProgram()
	p.AddGlobal("g", 8, nil)
	f := &ir.Func{Name: "main", NumRegs: 8}
	mk := func(label string, stm bool) *ir.Block {
		b := f.NewBlock(label)
		st := ir.OpStore
		if stm {
			st = ir.OpStmStore
		}
		b.Instrs = []ir.Instr{
			{Op: ir.OpGlobalAddr, Dst: 0, Name: "g"},
			{Op: ir.OpLoad, Dst: 4, A: 0, Width: 8},
			{Op: ir.OpBin, Dst: 5, A: 4, B: 4, Bin: ir.BinAdd},
			{Op: st, A: 0, B: 5, Width: 8},
			{Op: ir.OpRet, A: 5},
		}
		return b
	}
	mk("htm", false)
	mk("stm", true)
	p.AddFunc(f)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	bp, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	c := bp.Code(f)
	htm := ops(c, c.EntryPC(0), c.EntryPC(1))
	stm := ops(c, c.EntryPC(1), len(c.Insts))
	if len(htm) != len(stm) {
		t.Fatalf("clone streams differ in length: %v vs %v", htm, stm)
	}
	for i := range htm {
		hin := c.Insts[c.EntryPC(0)+i]
		sin := c.Insts[c.EntryPC(1)+i]
		if hin.Idx != sin.Idx || hin.N != sin.N {
			t.Fatalf("clone boundary mismatch at %d: %d+%d vs %d+%d", i, hin.Idx, hin.N, sin.Idx, sin.N)
		}
	}
	// The fused store kind is preserved.
	var sawPlain, sawStm bool
	for _, in := range c.Insts {
		if in.Op == OpLoadBinStore {
			if in.Stm {
				sawStm = true
			} else {
				sawPlain = true
			}
		}
	}
	if !sawPlain || !sawStm {
		t.Errorf("expected one plain and one stm load-bin-store fusion")
	}
}

func TestCompileNeverFusesDivRem(t *testing.T) {
	p := ir.NewProgram()
	f := &ir.Func{Name: "main", NumRegs: 4}
	b := f.NewBlock("entry")
	b.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: 0, Imm: 10},
		{Op: ir.OpBin, Dst: 1, A: 0, B: 0, Bin: ir.BinDiv},
		{Op: ir.OpBin, Dst: 2, A: 1, B: 0, Bin: ir.BinRem},
		{Op: ir.OpBr, A: 2, Then: 1, Else: 1},
	}
	ex := f.NewBlock("exit")
	ex.Instrs = []ir.Instr{{Op: ir.OpRet, A: 2}}
	p.AddFunc(f)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bp, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range bp.Code(f).Insts {
		switch in.Op {
		case OpConstBin, OpCmpBr, OpLoadBinStore:
			t.Fatalf("div/rem fused into %v", in.Op)
		}
	}
}

func TestCompileRejectsUnresolved(t *testing.T) {
	p := ir.NewProgram()
	p.AddGlobal("g", 8, nil)
	f := &ir.Func{Name: "main", NumRegs: 2}
	b := f.NewBlock("entry")
	b.Instrs = []ir.Instr{
		{Op: ir.OpGlobalAddr, Dst: 0, Name: "g"},
		{Op: ir.OpRet, A: 0},
	}
	p.AddFunc(f)
	// Deliberately skip Resolve: Compile must refuse rather than emit an
	// instruction with a nil global pointer.
	if _, err := Compile(p); err == nil {
		t.Fatal("Compile accepted an unresolved program")
	}
}

func TestOpString(t *testing.T) {
	for op := OpConst; op <= OpLoadBinStore; op++ {
		if s := op.String(); s == "" {
			t.Errorf("Op(%d).String() empty", int(op))
		}
	}
	if Op(math.MaxUint8).String() == "" {
		t.Error("unknown op string empty")
	}
}
