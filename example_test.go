package firestarter_test

import (
	"fmt"

	firestarter "github.com/firestarter-go/firestarter"
)

// Hardening a program with a persistent crash: the recovery runtime rolls
// the crash back and injects ENOMEM into the preceding malloc, so the
// program's own error handling produces the outcome.
func ExampleNewServer() {
	prog := firestarter.MustCompile(`
int main() {
	char *p = malloc(64);
	if (!p) {
		puts("allocation failed, degrading gracefully");
		return 1;
	}
	int *q = NULL;
	*q = 42;
	free(p);
	return 0;
}`)
	srv, err := firestarter.NewServer(prog)
	if err != nil {
		fmt.Println(err)
		return
	}
	srv.Run(0)
	fmt.Print(srv.Stdout())
	fmt.Printf("exit=%d injections=%d\n", srv.ExitCode(), srv.Stats().Injections)
	// Output:
	// allocation failed, degrading gracefully
	// exit=1 injections=1
}

// The static recovery surface of a program: which library call sites can
// host a crash transaction (gates), which embed into one, and which break
// protection (irrecoverable external effects).
func ExampleAnalyzeSites() {
	prog := firestarter.MustCompile(`
int main() {
	char buf[8];
	int fd = open("/etc/motd", 0);
	if (fd < 0) { return 1; }
	int n = read(fd, buf, 8);
	if (n < 0) { return 2; }
	write(1, buf, n);
	close(fd);
	return 0;
}`)
	gates, embeds, breaks := firestarter.AnalyzeSites(prog)
	fmt.Printf("gates=%d embedded=%d breaks=%d\n", gates, embeds, breaks)
	// Output:
	// gates=2 embedded=1 breaks=1
}

// Driving a built-in server analog with its standard workload.
func ExampleServer_DriveWorkload() {
	app, _ := firestarter.Builtin("redis")
	srv, err := firestarter.NewAppServer(app)
	if err != nil {
		fmt.Println(err)
		return
	}
	res := srv.DriveWorkload(app.Protocol, app.Port, 50, 4, 1)
	// The closed-loop driver may complete a few in-flight extras.
	fmt.Printf("completed>=50: %v died=%v\n", res.Completed >= 50, res.ServerDied)
	// Output:
	// completed>=50: true died=false
}

// Running a baseline without protection: the same crash is fatal.
func ExampleWithoutProtection() {
	prog := firestarter.MustCompile(`
int main() {
	int *q = NULL;
	*q = 1;
	return 0;
}`)
	srv, _ := firestarter.NewServer(prog, firestarter.WithoutProtection())
	out := srv.Run(0)
	fmt.Println(out.Kind)
	// Output:
	// trapped
}
