module github.com/firestarter-go/firestarter

go 1.22
