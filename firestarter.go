// Package firestarter is a Go reproduction of "FIRestarter: Practical
// Software Crash Recovery with Targeted Library-level Fault Injection"
// (Bhat, van der Kouwe, Bos, Giuffrida — DSN 2021).
//
// FIRestarter hardens event-driven servers against fail-stop crashes: it
// splits execution into crash transactions bounded by library calls,
// checkpoints them with hybrid hardware/software transactional memory, and
// — when a crash proves persistent — rolls back, runs a compensation
// action for the preceding library call, and injects that call's
// documented error return so the application's own error-handling code
// steers around the faulty region.
//
// Because Go's runtime precludes a literal port (no libc interposition, no
// raw checkpoint/rollback under a moving GC, no Intel TSX), this library
// implements the complete system one level down: programs are written in a
// miniature C dialect, compiled to an IR, transformed by the same four
// passes the paper describes, and executed on a simulated process (memory,
// heap, sockets, epoll, filesystem) with a faithful TSX model. See
// DESIGN.md for the substitution map and EXPERIMENTS.md for the
// reproduction of every table and figure.
//
// Quick start:
//
//	prog, err := firestarter.Compile(src)             // mini-C source
//	srv, err := firestarter.NewServer(prog,
//	    firestarter.WithSetup(func(o *firestarter.OS) { o.FS().Add("/www/index.html", body) }))
//	out := srv.Run(0)                                  // runs until exit/block/crash
//	fmt.Println(srv.Stats().Injections)
package firestarter

import (
	"fmt"

	"github.com/firestarter-go/firestarter/internal/analysis"
	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/core"
	"github.com/firestarter-go/firestarter/internal/faultinj"
	"github.com/firestarter-go/firestarter/internal/htm"
	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/ir"
	"github.com/firestarter-go/firestarter/internal/libmodel"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/mem"
	"github.com/firestarter-go/firestarter/internal/minic"
	"github.com/firestarter-go/firestarter/internal/transform"
	"github.com/firestarter-go/firestarter/internal/workload"
)

// Re-exported building blocks. Aliases keep the public surface small
// while giving examples and downstream code access to the full machinery.
type (
	// OS is the simulated operating system a server runs against.
	OS = libsim.OS
	// Conn is one simulated client connection (drive with ClientDeliver
	// and ClientTake).
	Conn = libsim.Conn
	// Stats aggregates the recovery runtime's counters.
	Stats = core.Stats
	// HTMStats aggregates the hardware-transaction model's counters.
	HTMStats = htm.Stats
	// Mode selects the protection scheme.
	Mode = core.Mode
	// Outcome reports why a Run returned.
	Outcome = interp.Outcome
	// App is a built-in server application (Nginx/Apache/... analogs).
	App = apps.App
	// Fault is one plantable software fault.
	Fault = faultinj.Fault
	// FaultKind is a fault type (fail-stop or a fail-silent corruption).
	FaultKind = faultinj.Kind
	// WorkloadResult summarizes a driven client workload.
	WorkloadResult = workload.Result
	// Generator produces and validates protocol traffic.
	Generator = workload.Generator
)

// Protection modes.
const (
	ModeHybrid  = core.ModeHybrid
	ModeHTMOnly = core.ModeHTMOnly
	ModeSTMOnly = core.ModeSTMOnly
)

// Fault kinds.
const (
	FailStop      = faultinj.FailStop
	FlipBranch    = faultinj.FlipBranch
	CorruptConst  = faultinj.CorruptConst
	WrongOperator = faultinj.WrongOperator
	OffByOne      = faultinj.OffByOne
)

// Run outcome kinds.
const (
	OutExited    = interp.OutExited
	OutTrapped   = interp.OutTrapped
	OutBlocked   = interp.OutBlocked
	OutStepLimit = interp.OutStepLimit
)

// Program is a compiled (but not yet instrumented) application.
type Program struct {
	ir *ir.Program
}

// Compile translates mini-C source into a program.
func Compile(source string) (*Program, error) {
	p, err := minic.Compile(source, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		return nil, err
	}
	return &Program{ir: p}, nil
}

// MustCompile is Compile for known-good sources (panics on error).
func MustCompile(source string) *Program {
	p, err := Compile(source)
	if err != nil {
		panic(err)
	}
	return p
}

// IR exposes the program's intermediate representation (inspection,
// fault planting).
func (p *Program) IR() *ir.Program { return p.ir }

// InstrCount returns the program's instruction count (code size metric).
func (p *Program) InstrCount() int { return p.ir.InstrCount() }

// Builtin returns a built-in server application by name: "nginx",
// "apache", "lighttpd", "redis" or "postgres".
func Builtin(name string) (*App, error) {
	a := apps.ByName(name)
	if a == nil {
		return nil, fmt.Errorf("firestarter: no built-in app %q", name)
	}
	return a, nil
}

// BuiltinApps returns all five built-in server analogs.
func BuiltinApps() []*App { return apps.All() }

// options collects functional-option state.
type options struct {
	cfg     core.Config
	setup   func(*OS)
	vanilla bool
	fault   *Fault
	model   *libmodel.Model
}

// Option configures NewServer.
type Option func(*options)

// WithMode selects the protection scheme (default ModeHybrid).
func WithMode(m Mode) Option {
	return func(o *options) { o.cfg.Mode = m }
}

// WithThreshold sets the HTM abort-rate threshold θ (default 1%).
func WithThreshold(t float64) Option {
	return func(o *options) { o.cfg.Threshold = t }
}

// WithSampleSize sets the adaptive policy's accounting sample size S.
func WithSampleSize(s int64) Option {
	return func(o *options) { o.cfg.SampleSize = s }
}

// WithRetries sets how many rollback-and-re-execute attempts precede the
// persistent-fault diagnosis (default 1).
func WithRetries(n int) Option {
	return func(o *options) { o.cfg.RetryTransient = n }
}

// WithStickyDivert keeps gates permanently diverted after an injection.
func WithStickyDivert() Option {
	return func(o *options) { o.cfg.StickyDivert = true }
}

// WithInterrupts enables the modelled asynchronous-abort process with the
// given mean instruction gap and seed.
func WithInterrupts(meanGap float64, seed int64) Option {
	return func(o *options) {
		o.cfg.HTM.MeanInstrsPerInterrupt = meanGap
		o.cfg.HTM.Seed = seed
	}
}

// WithSetup registers a hook preparing the simulated OS (document root,
// data files) before the program boots.
func WithSetup(f func(*OS)) Option {
	return func(o *options) { o.setup = f }
}

// WithMaskedWrites enables the paper's proposed §V-A extension: socket
// write/send become recoverable (their network-visible effect is
// retracted on rollback and an EPIPE is injected), enlarging the recovery
// surface at the cost of occasionally surfacing a broken connection to
// the client.
func WithMaskedWrites() Option {
	return func(o *options) { o.model = libmodel.DefaultMasked() }
}

// WithoutProtection runs the vanilla program with no instrumentation (the
// benchmark baseline).
func WithoutProtection() Option {
	return func(o *options) { o.vanilla = true }
}

// WithFault plants a software fault into the program before hardening
// (the paper's methodology: the bug ships in the source; FIRestarter's
// instrumentation is applied on top).
func WithFault(f Fault) Option {
	return func(o *options) { o.fault = &f }
}

// Server is a runnable (optionally hardened) application instance.
type Server struct {
	os   *libsim.OS
	m    *interp.Machine
	rt   *core.Runtime // nil when unprotected
	prog *ir.Program
}

// NewServer boots a program: by default it is hardened with the full
// FIRestarter pipeline; see WithoutProtection and WithMode for baselines.
func NewServer(p *Program, opts ...Option) (*Server, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	prog := p.ir
	if o.fault != nil {
		fp, err := faultinj.Apply(prog, *o.fault)
		if err != nil {
			return nil, err
		}
		prog = fp
	}

	osim := libsim.New(mem.NewSpace())
	if o.setup != nil {
		o.setup(osim)
	}

	if o.vanilla {
		m, err := interp.New(prog.Clone(), osim, nil)
		if err != nil {
			return nil, err
		}
		return &Server{os: osim, m: m, prog: prog}, nil
	}

	model := o.model
	if model == nil {
		model = libmodel.Default()
	}
	tr, err := transform.Apply(prog, model)
	if err != nil {
		return nil, err
	}
	rt := core.New(tr, osim, o.cfg)
	m, err := interp.New(tr.Prog, osim, rt)
	if err != nil {
		return nil, err
	}
	rt.Attach(m)
	return &Server{os: osim, m: m, rt: rt, prog: tr.Prog}, nil
}

// NewAppServer boots a built-in application (its Setup hook runs
// automatically, before any WithSetup hook).
func NewAppServer(app *App, opts ...Option) (*Server, error) {
	p, err := app.Compile()
	if err != nil {
		return nil, err
	}
	if app.Setup != nil {
		opts = append([]Option{}, opts...)
		// Chain the app's setup before the caller's.
		var userSetup func(*OS)
		for _, opt := range opts {
			var probe options
			opt(&probe)
			if probe.setup != nil {
				userSetup = probe.setup
			}
		}
		setup := app.Setup
		if userSetup != nil {
			inner := setup
			setup = func(o *OS) {
				inner(o)
				userSetup(o)
			}
		}
		opts = append(opts, WithSetup(setup))
	}
	return NewServer(&Program{ir: p}, opts...)
}

// Run executes up to maxSteps instructions (0 = unbounded) and reports
// why execution stopped: OutBlocked means the server is waiting for
// client input.
func (s *Server) Run(maxSteps int64) Outcome { return s.m.Run(maxSteps) }

// Connect opens a simulated client connection to the given port (the
// server must have bound it — run the server until it blocks first).
func (s *Server) Connect(port int64) *Conn { return s.os.Connect(port) }

// OS exposes the simulated operating system (filesystem, heap, clock).
func (s *Server) OS() *OS { return s.os }

// Stdout returns everything the program logged.
func (s *Server) Stdout() string { return s.os.Stdout() }

// Cycles returns the cost-model time consumed so far.
func (s *Server) Cycles() int64 { return s.m.Cycles }

// ExitCode returns the exit code once the program has exited.
func (s *Server) ExitCode() int64 { return s.m.ExitCode() }

// Protected reports whether the server runs under the recovery runtime.
func (s *Server) Protected() bool { return s.rt != nil }

// Stats returns the recovery runtime's counters (zero value when
// unprotected).
func (s *Server) Stats() Stats {
	if s.rt == nil {
		return Stats{}
	}
	return s.rt.Stats()
}

// HTMStats returns the hardware model's counters (zero when unprotected).
func (s *Server) HTMStats() HTMStats {
	if s.rt == nil {
		return HTMStats{}
	}
	return s.rt.HTMStats()
}

// Runtime exposes the recovery runtime for advanced inspection (nil when
// unprotected).
func (s *Server) Runtime() *core.Runtime { return s.rt }

// Machine exposes the underlying interpreter (profiling hooks).
func (s *Server) Machine() *interp.Machine { return s.m }

// DriveWorkload runs a standard protocol workload ("http", "redis",
// "sql") against the server and returns throughput/validity results.
func (s *Server) DriveWorkload(proto string, port int64, requests, concurrency int, seed int64) WorkloadResult {
	d := &workload.Driver{
		OS: s.os, M: s.m, Port: port,
		Gen:         workload.ForProtocol(proto),
		Concurrency: concurrency,
		Seed:        seed,
	}
	return d.Run(requests)
}

// AnalyzeSites runs the Library Interface Analyzer over a program and
// returns per-role site counts (gates, embedded, breaks) — the static
// recovery-surface view.
func AnalyzeSites(p *Program) (gates, embeds, breaks int) {
	res := analysis.Analyze(p.ir.Clone(), libmodel.Default())
	return res.Counts()
}

// FaultInBlockCalling returns a fail-stop fault planted at the start of
// the first basic block of `function` that contains a call to `libcall` —
// the targeted placement used by the paper's §VI-F case studies (the crash
// lands in the code region following that library call, so recovery
// diverts execution by injecting an error into it).
func FaultInBlockCalling(app *App, function, libcall string) (Fault, error) {
	prog, err := app.Compile()
	if err != nil {
		return Fault{}, err
	}
	f := prog.Funcs[function]
	if f == nil {
		return Fault{}, fmt.Errorf("firestarter: %s has no function %q", app.Name, function)
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpLib && b.Instrs[i].Name == libcall {
				return Fault{ID: 1, Kind: FailStop, Func: function, Block: b.ID, Index: 0}, nil
			}
		}
	}
	return Fault{}, fmt.Errorf("firestarter: %s.%s has no call to %q", app.Name, function, libcall)
}

// PlanFaults profiles an app under its standard workload and plans up to
// max faults of the given kind in non-critical executed blocks (one fault
// per experiment, the paper's §VI-B methodology).
func PlanFaults(app *App, kind FaultKind, max int, seed int64) ([]Fault, error) {
	prog, err := app.Compile()
	if err != nil {
		return nil, err
	}
	osim := libsim.New(mem.NewSpace())
	if app.Setup != nil {
		app.Setup(osim)
	}
	m, err := interp.New(prog.Clone(), osim, nil)
	if err != nil {
		return nil, err
	}
	profile := faultinj.NewProfile()
	m.BlockHook = profile.HookFunc
	d := &workload.Driver{
		OS: osim, M: m, Port: app.Port,
		Gen:         workload.ForProtocol(app.Protocol),
		Concurrency: 4, Seed: seed,
	}
	// Startup blocks are critical; everything first executed while
	// serving is a candidate.
	m.Run(5_000_000) // boot until first block
	profile.MarkServing()
	d.Run(120)
	m.BlockHook = nil
	candidates := profile.ServingBlocks(prog.Entry)
	return faultinj.PlanFaults(prog, candidates, kind, max, seed), nil
}
