// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment end to end and reports
// the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. The rendered tables are printed once per
// benchmark via b.Log (visible with -v); EXPERIMENTS.md records
// paper-vs-measured for each experiment.
package firestarter_test

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/firestarter-go/firestarter/internal/bench"
	"github.com/firestarter-go/firestarter/internal/libmodel"
)

// benchRunner returns the standard experiment configuration used for the
// recorded results.
func benchRunner() bench.Runner {
	return bench.Runner{Requests: 300, Concurrency: 4, Seed: 1, FaultsPerServer: 12}
}

func BenchmarkTableII(b *testing.B) {
	var res bench.TableIIResult
	for i := 0; i < b.N; i++ {
		res = bench.TableII()
	}
	div := 0
	for _, c := range res.Counts {
		div += c[0]
	}
	b.ReportMetric(float64(res.Total), "functions")
	b.ReportMetric(float64(div), "divertable")
	b.Log("\n" + res.Render())
}

func BenchmarkTableIII(b *testing.B) {
	r := benchRunner()
	var res bench.TableIIIResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = r.TableIII()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.RecoverablePct, row.Server+"_recoverable_%")
	}
	b.Log("\n" + res.Render())
}

func BenchmarkTableIV(b *testing.B) {
	r := benchRunner()
	var res bench.TableIVResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = r.TableIV()
		if err != nil {
			b.Fatal(err)
		}
	}
	injected, recovered := 0, 0
	for _, row := range res.Rows {
		injected += row.FSInjected
		recovered += row.FSRecovered
	}
	b.ReportMetric(float64(injected), "failstop_injected")
	b.ReportMetric(float64(recovered), "failstop_recovered")
	b.Log("\n" + res.Render())
}

func BenchmarkFigure3(b *testing.B) {
	r := benchRunner()
	var res bench.Figure3Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = r.Figure3()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		switch {
		case row.Policy[:5] == "naive":
			b.ReportMetric(row.DegradationPct, "naive_degr_%")
		case row.Policy[:6] == "manual":
			b.ReportMetric(row.DegradationPct, "manual_degr_%")
		default:
			b.ReportMetric(row.DegradationPct, "dynamic_degr_%")
		}
	}
	b.Log("\n" + res.Render())
}

func BenchmarkFigure5(b *testing.B) {
	r := benchRunner()
	var res bench.Figure5Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = r.Figure5()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.P50us, row.Server+"_p50_us")
	}
	b.Log("\n" + res.Render())
}

func BenchmarkFigure6(b *testing.B) {
	r := bench.Runner{Requests: 120, Concurrency: 4, Seed: 1}
	var res bench.Figure6Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = r.Figure6()
		if err != nil {
			b.Fatal(err)
		}
	}
	// Spread across the sweep per server: the paper's finding is
	// insensitivity, so report min and max degradation.
	for _, name := range res.Order {
		lo, hi := 1e18, -1e18
		for _, c := range res.Servers[name] {
			if c.DegradationPct < lo {
				lo = c.DegradationPct
			}
			if c.DegradationPct > hi {
				hi = c.DegradationPct
			}
		}
		b.ReportMetric(hi-lo, name+"_sweep_spread_%")
	}
	b.Log("\n" + res.Render())
}

func BenchmarkFigure7(b *testing.B) {
	r := benchRunner()
	var res bench.Figure7Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = r.Figure7()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.FIRestarterPct, row.Server+"_overhead_%")
	}
	b.Log("\n" + res.Render())
}

// BenchmarkFigure7Bytecode runs the same campaign with guests executing
// on the bytecode backend instead of the tree-walker. Results are
// byte-identical to BenchmarkFigure7 (the differential tests in
// internal/bench enforce this); only wall-clock changes.
func BenchmarkFigure7Bytecode(b *testing.B) {
	r := benchRunner()
	r.Backend = "bytecode"
	var res bench.Figure7Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = r.Figure7()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.FIRestarterPct, row.Server+"_overhead_%")
	}
}

// BenchmarkFigure7Parallel runs the same campaign with the worker pool
// sized to the host; output is byte-identical to the serial run (see
// TestParallelHarnessMatchesSerial), only wall-clock changes.
func BenchmarkFigure7Parallel(b *testing.B) {
	r := benchRunner()
	r.Parallelism = runtime.NumCPU()
	var res bench.Figure7Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = r.Figure7()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.FIRestarterPct, row.Server+"_overhead_%")
	}
}

func BenchmarkFigure8(b *testing.B) {
	r := benchRunner()
	var res bench.Figure7Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = r.Figure7()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.HTMOnlyAbortPct, row.Server+"_htmonly_abort_%")
		b.ReportMetric(row.FIRestarterAbortPct, row.Server+"_fir_abort_%")
	}
	b.Log("\n" + res.RenderFigure8())
}

func BenchmarkFigure9(b *testing.B) {
	r := benchRunner()
	var res bench.Figure9Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = r.Figure9()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.FIRestarterPct, row.Server+"_mem_overhead_%")
	}
	b.Log("\n" + res.Render())
}

func BenchmarkRealWorldBugs(b *testing.B) {
	r := benchRunner()
	var res bench.RealWorldResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = r.RealWorld()
		if err != nil {
			b.Fatal(err)
		}
	}
	survived := 0
	for _, cs := range res.Cases {
		if cs.Survived && cs.FollowupOK {
			survived++
		}
	}
	b.ReportMetric(float64(survived), "cases_survived")
	b.Log("\n" + res.Render())
}

func BenchmarkAblationDivert(b *testing.B) {
	r := benchRunner()
	var res bench.DivertResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = r.AblationDivert()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		name := "episode"
		if row.Policy[:6] == "sticky" {
			name = "sticky"
		}
		b.ReportMetric(float64(row.Crashes), name+"_crashes")
	}
	b.Log("\n" + res.Render())
}

func BenchmarkAblationRetry(b *testing.B) {
	r := benchRunner()
	var res bench.RetryResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = r.AblationRetry()
		if err != nil {
			b.Fatal(err)
		}
	}
	if n := len(res.Rows); n > 0 {
		b.ReportMetric(float64(res.Rows[n-1].RetryExecs), "reexecs_at_8_retries")
	}
	b.Log("\n" + res.Render())
}

func BenchmarkAblationGeometry(b *testing.B) {
	r := benchRunner()
	var res bench.GeometryResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = r.AblationGeometry()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.OverheadPct, fmt.Sprintf("l1_%dkib_overhead_%%", row.CacheKiB))
	}
	b.Log("\n" + res.Render())
}

func BenchmarkExtensionMaskedWrites(b *testing.B) {
	r := benchRunner()
	var res bench.MaskedResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = r.AblationMaskedWrites()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.MaskedRecoverablePct, row.Server+"_masked_surface_%")
	}
	b.Log("\n" + res.Render())
}

func BenchmarkRestartBaseline(b *testing.B) {
	r := benchRunner()
	var res bench.RestartResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = r.AblationRestartBaseline()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		name := "restart"
		if row.Strategy == "FIRestarter" {
			name = "firestarter"
		}
		b.ReportMetric(float64(row.Failed), name+"_failed")
		b.ReportMetric(float64(row.Restarts), name+"_restarts")
	}
	b.Log("\n" + res.Render())
}

func BenchmarkTxWindows(b *testing.B) {
	r := benchRunner()
	var res bench.WindowResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = r.TxWindows()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(float64(row.StepsP50), row.Server+"_window_p50_steps")
		b.ReportMetric(row.PerRequest, row.Server+"_tx_per_req")
	}
	b.Log("\n" + res.Render())
}

// BenchmarkTableI is a placeholder for the paper's Table I, which surveys
// prior systems' published numbers and is not reproducible by running
// code; the README reproduces it as a citation table.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = libmodel.Default()
	}
	b.Log("Table I is a literature survey (see README.md); nothing to measure")
}
