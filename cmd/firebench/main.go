// Command firebench regenerates the paper's evaluation: every table and
// figure of §VI, printed in the paper's layout, plus the repo's own
// extension campaigns.
//
// Usage:
//
//	firebench [-experiment <name>] [-list] [-backend tree|bytecode]
//	          [-requests N] [-faults N] [-seed N] [-parallel N]
//	          [-trace-out FILE] [-metrics-out FILE] [-profile FILE]
//	          [-record-out DIR] [-fingerprint]
//
// -list prints the experiment names -experiment accepts (plus "all",
// the default, which runs every table/figure experiment in order; the
// per-app observability runs are extras, selected by name only, so the
// default suite's output stays stable). -parallel fans each campaign's
// isolated measurement runs across N workers; output is byte-identical
// to a serial run for the same seed. -backend selects the guest
// execution strategy (the tree-walking interpreter or the compiled
// bytecode stream); every experiment's output is byte-identical across
// backends, which `make diff-smoke` checks in CI.
//
// The observability experiments (one per app: nginx, apache, lighttpd,
// redis, postgres) drive the hardened server with structured spans, the
// metrics registry and the guest profiler enabled, and export them as
// JSONL via -trace-out, -metrics-out and -profile. All three outputs are
// cycle-domain and byte-deterministic for a fixed seed.
//
// The chaos experiment (also an extra) sweeps seeded fail-stop and
// fail-silent faults across all five apps under the full recovery
// escalation ladder (rollback, STM retry, gate injection, request
// shedding, supervised microreboot, crash-loop breaker) and attributes
// every fault to the rung that absorbed it; -trace-out exports the
// campaign-global span log.
//
// The fleet experiment (extra) replicates every chaos campaign behind
// the deterministic L4 balancer at each -replicas count and reports the
// goodput and p999 scaling curve; -trace-out exports the experiment-
// global span log, which carries replica/incarnation stamps on every
// replica-attributed event.
//
// -record-out arms the flight recorder for the chaos and openloop
// experiments: every incarnation that ends unrecovered (or with the
// crash-loop breaker open) is captured as a replay manifest plus a
// companion span stream, replayable and reverse-steppable with
// firetrace -replay. -fingerprint appends the campaign span stream's
// hash-chain value to those experiments' output — one line that commits
// to every byte of the -trace-out export.
//
// The openloop experiment (extra) calibrates the hardened web server's
// recovery-inclusive service rate closed-loop, then offers fixed
// multiples of it on a deterministic Poisson arrival schedule — a large
// modeled client population with connection churn, slow readers,
// fragmented writes and pipelining — behind the supervised fleet. The
// table reports latency vs offered load, the clean/recovery p999 split
// and the shedding knee; -trace-out exports the experiment-global span
// log.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/bench"
)

// experiment is one runnable entry: name, a one-line description for
// -list, and the runner returning rendered output. Extras run only when
// selected by name — "all" keeps to the paper suite.
type experiment struct {
	name  string
	desc  string
	extra bool
	run   func(r bench.Runner) (string, error)
}

// obsvOut carries the export paths and experiment knobs from the flags
// to the experiment closures.
type obsvOut struct {
	traceOut    string
	metricsOut  string
	profileOut  string
	replicas    string // -replicas: fleet experiment sizes, comma-separated
	fingerprint bool   // -fingerprint: print the span-stream hash chain
}

// parseSizes parses the -replicas flag ("1,2,4,8") into replica counts.
func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(part, "%d", &n); err != nil || n <= 0 {
			return nil, fmt.Errorf("bad replica count %q", part)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

// experiments is the single registry every consumer derives from: the
// -experiment dispatch, the -list output, the error message, and the
// flag's usage string.
func experiments(out *obsvOut) []experiment {
	// fig7 and fig8 render different series of the same measurement runs;
	// memoize so `-experiment all` pays for them once.
	var fig7 *bench.Figure7Result
	sharedFig7 := func(r bench.Runner) (bench.Figure7Result, error) {
		if fig7 != nil {
			return *fig7, nil
		}
		res, err := r.Figure7()
		if err == nil {
			fig7 = &res
		}
		return res, err
	}

	exps := []experiment{
		{name: "table2", desc: "Table II: the 101 canonical libc functions by recovery class", run: func(bench.Runner) (string, error) {
			return bench.TableII().Render(), nil
		}},
		{name: "table3", desc: "Table III: normalized performance overhead per server", run: func(r bench.Runner) (string, error) {
			res, err := r.TableIII()
			return res.Render(), err
		}},
		{name: "table4", desc: "Table IV: fault-injection survival campaigns", run: func(r bench.Runner) (string, error) {
			res, err := r.TableIV()
			return res.Render(), err
		}},
		{name: "fig3", desc: "Figure 3: adaptive-transaction policies on Nginx", run: func(r bench.Runner) (string, error) {
			res, err := r.Figure3()
			return res.Render(), err
		}},
		{name: "fig5", desc: "Figure 5: overhead vs transaction-window length", run: func(r bench.Runner) (string, error) {
			res, err := r.Figure5()
			return res.Render(), err
		}},
		{name: "fig6", desc: "Figure 6: overhead vs abort-rate threshold θ", run: func(r bench.Runner) (string, error) {
			res, err := r.Figure6()
			return res.Render(), err
		}},
		{name: "fig7", desc: "Figure 7: overhead vs working-set footprint", run: func(r bench.Runner) (string, error) {
			res, err := sharedFig7(r)
			return res.Render(), err
		}},
		{name: "fig8", desc: "Figure 8: abort rate vs working-set footprint (same runs as fig7)", run: func(r bench.Runner) (string, error) {
			res, err := sharedFig7(r)
			return res.RenderFigure8(), err
		}},
		{name: "fig9", desc: "Figure 9: throughput under a persistent injected fault", run: func(r bench.Runner) (string, error) {
			res, err := r.Figure9()
			return res.Render(), err
		}},
		{name: "realworld", desc: "§VI-F: the real-world crash case studies", run: func(r bench.Runner) (string, error) {
			res, err := r.RealWorld()
			return res.Render(), err
		}},
		{name: "windows", desc: "transaction-window composition per server", run: func(r bench.Runner) (string, error) {
			res, err := r.TxWindows()
			return res.Render(), err
		}},
		{name: "ablation", desc: "ablations: divert, retry, geometry, masked writes, restart baseline", run: func(r bench.Runner) (string, error) {
			var sb strings.Builder
			d, err := r.AblationDivert()
			if err != nil {
				return "", err
			}
			sb.WriteString(d.Render() + "\n")
			rt, err := r.AblationRetry()
			if err != nil {
				return "", err
			}
			sb.WriteString(rt.Render() + "\n")
			g, err := r.AblationGeometry()
			if err != nil {
				return "", err
			}
			sb.WriteString(g.Render() + "\n")
			mw, err := r.AblationMaskedWrites()
			if err != nil {
				return "", err
			}
			sb.WriteString(mw.Render() + "\n")
			rb, err := r.AblationRestartBaseline()
			if err != nil {
				return "", err
			}
			sb.WriteString(rb.Render())
			return sb.String(), nil
		}},
		{name: "threads", desc: "multi-worker scaling and abort-cause breakdown (conflict aborts)", run: func(r bench.Runner) (string, error) {
			res, err := r.Threads()
			return res.Render(), err
		}},
		{name: "chaos", desc: "chaos soak: seeded fail-stop + fail-silent faults vs the full recovery ladder (extra)", extra: true, run: func(r bench.Runner) (string, error) {
			res, err := r.Chaos()
			if err != nil {
				return "", err
			}
			if out.traceOut != "" {
				f, err := os.Create(out.traceOut)
				if err != nil {
					return "", err
				}
				if err := res.WriteTrace(f); err != nil {
					f.Close()
					return "", err
				}
				if err := f.Close(); err != nil {
					return "", err
				}
			}
			text := res.Render()
			if out.fingerprint {
				text += fmt.Sprintf("span fingerprint: %016x\n", res.Fingerprint())
			}
			return text, nil
		}},
		{name: "fleet", desc: "fleet scaling: the chaos matrix behind the deterministic L4 balancer at 1/2/4/8 replicas (extra)", extra: true, run: func(r bench.Runner) (string, error) {
			sizes, err := parseSizes(out.replicas)
			if err != nil {
				return "", err
			}
			res, err := r.Fleet(sizes...)
			if err != nil {
				return "", err
			}
			if out.traceOut != "" {
				f, err := os.Create(out.traceOut)
				if err != nil {
					return "", err
				}
				if err := res.WriteTrace(f); err != nil {
					f.Close()
					return "", err
				}
				if err := f.Close(); err != nil {
					return "", err
				}
			}
			return res.Render(), nil
		}},
		{name: "domains", desc: "heap domains: undo-vs-discard ablation + fail-silent containment on the pool servers (extra)", extra: true, run: func(r bench.Runner) (string, error) {
			var sb strings.Builder
			ab, err := r.AblationDomains()
			if err != nil {
				return "", err
			}
			sb.WriteString(ab.Render() + "\n")
			ct, err := r.Containment()
			if err != nil {
				return "", err
			}
			if out.traceOut != "" {
				f, err := os.Create(out.traceOut)
				if err != nil {
					return "", err
				}
				if err := ct.WriteTrace(f); err != nil {
					f.Close()
					return "", err
				}
				if err := f.Close(); err != nil {
					return "", err
				}
			}
			sb.WriteString(ct.Render())
			return sb.String(), nil
		}},
		{name: "openloop", desc: "open-loop offered-load sweep: latency vs load and the shedding knee over the supervised fleet (extra)", extra: true, run: func(r bench.Runner) (string, error) {
			res, err := r.OpenLoop()
			if err != nil {
				return "", err
			}
			if out.traceOut != "" {
				f, err := os.Create(out.traceOut)
				if err != nil {
					return "", err
				}
				if err := res.WriteTrace(f); err != nil {
					f.Close()
					return "", err
				}
				if err := f.Close(); err != nil {
					return "", err
				}
			}
			text := res.Render()
			if out.fingerprint {
				text += fmt.Sprintf("span fingerprint: %016x\n", res.Fingerprint())
			}
			return text, nil
		}},
	}
	for _, app := range apps.All() {
		exps = append(exps, observeExperiment(app.Name, out))
	}
	return exps
}

// observeExperiment builds the per-app observability extra: the hardened
// app under the standard workload with spans, metrics and the profiler
// enabled, exported through the -trace-out/-metrics-out/-profile flags.
func observeExperiment(appName string, out *obsvOut) experiment {
	return experiment{
		name:  appName,
		desc:  "observability run: hardened " + appName + " with spans, metrics, guest profiler (extra)",
		extra: true,
		run: func(r bench.Runner) (string, error) {
			res, err := r.Observe(appName)
			if err != nil {
				return "", err
			}
			if err := exportObsv(res, out); err != nil {
				return "", err
			}
			return res.Render(), nil
		},
	}
}

// exportObsv writes the requested JSONL exports.
func exportObsv(res *bench.ObserveResult, out *obsvOut) error {
	write := func(path string, render func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(out.traceOut, res.WriteTrace); err != nil {
		return err
	}
	if err := write(out.metricsOut, res.WriteMetrics); err != nil {
		return err
	}
	return write(out.profileOut, res.WriteProfile)
}

func names(out *obsvOut) []string {
	var names []string
	for _, e := range experiments(out) {
		names = append(names, e.name)
	}
	return names
}

func main() {
	os.Exit(run())
}

func run() int {
	var out obsvOut
	var (
		experiment = flag.String("experiment", "all",
			"experiment to run (all, "+strings.Join(names(&out), ", ")+")")
		list     = flag.Bool("list", false, "list experiment names and exit")
		requests = flag.Int("requests", 300, "requests per measurement run")
		faults   = flag.Int("faults", 12, "fault-injection experiments per server")
		seed     = flag.Int64("seed", 1, "seed for workloads, fault plans and the interrupt process")
		conc     = flag.Int("concurrency", 4, "simulated clients")
		parallel = flag.Int("parallel", 1, "worker pool size for measurement runs (1 = serial; results are identical)")
		backend  = flag.String("backend", "tree", "execution backend for guest machines (tree, bytecode); output is byte-identical either way")
	)
	flag.StringVar(&out.traceOut, "trace-out", "", "write the structured span trace as JSONL to this file (observability experiments)")
	flag.StringVar(&out.metricsOut, "metrics-out", "", "write the metrics registry as JSONL to this file (observability experiments)")
	flag.StringVar(&out.profileOut, "profile", "", "write the guest profile as JSONL to this file (observability experiments)")
	flag.StringVar(&out.replicas, "replicas", "1,2,4,8", "replica counts for the fleet experiment, comma-separated")
	flag.BoolVar(&out.fingerprint, "fingerprint", false, "print the span-stream hash-chain fingerprint (chaos, openloop)")
	recordOut := flag.String("record-out", "", "write replay manifests for failing incarnations/rungs into this directory (chaos, openloop; see firetrace -replay)")
	flag.Parse()

	if *list {
		for _, e := range experiments(&out) {
			fmt.Printf("%-10s %s\n", e.name, e.desc)
		}
		return 0
	}

	r := bench.Runner{
		Requests:        *requests,
		Concurrency:     *conc,
		Seed:            *seed,
		FaultsPerServer: *faults,
		Parallelism:     *parallel,
		Backend:         *backend,
		RecordDir:       *recordOut,
	}

	ran := false
	for _, e := range experiments(&out) {
		if *experiment == "all" && e.extra {
			continue
		}
		if *experiment != "all" && *experiment != e.name {
			continue
		}
		ran = true
		text, err := e.run(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "firebench: %s: %v\n", e.name, err)
			return 1
		}
		fmt.Println(text)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "firebench: unknown experiment %q\n", *experiment)
		fmt.Fprintln(os.Stderr, "available: all, "+strings.Join(names(&out), ", "))
		return 2
	}
	return 0
}
