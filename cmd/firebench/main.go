// Command firebench regenerates the paper's evaluation: every table and
// figure of §VI, printed in the paper's layout, plus the repo's own
// extension campaigns.
//
// Usage:
//
//	firebench [-experiment <name>] [-list]
//	          [-requests N] [-faults N] [-seed N] [-parallel N]
//
// -list prints the experiment names -experiment accepts (plus "all",
// the default, which runs every one of them in order). -parallel fans
// each campaign's isolated measurement runs across N workers; output is
// byte-identical to a serial run for the same seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/firestarter-go/firestarter/internal/bench"
)

// experiment is one runnable entry: name, a one-line description for
// -list, and the runner returning rendered output.
type experiment struct {
	name string
	desc string
	run  func(r bench.Runner) (string, error)
}

// experiments is the single registry every consumer derives from: the
// -experiment dispatch, the -list output, the error message, and the
// flag's usage string.
func experiments() []experiment {
	// fig7 and fig8 render different series of the same measurement runs;
	// memoize so `-experiment all` pays for them once.
	var fig7 *bench.Figure7Result
	sharedFig7 := func(r bench.Runner) (bench.Figure7Result, error) {
		if fig7 != nil {
			return *fig7, nil
		}
		res, err := r.Figure7()
		if err == nil {
			fig7 = &res
		}
		return res, err
	}

	return []experiment{
		{"table2", "Table II: the 101 canonical libc functions by recovery class", func(bench.Runner) (string, error) {
			return bench.TableII().Render(), nil
		}},
		{"table3", "Table III: normalized performance overhead per server", func(r bench.Runner) (string, error) {
			res, err := r.TableIII()
			return res.Render(), err
		}},
		{"table4", "Table IV: fault-injection survival campaigns", func(r bench.Runner) (string, error) {
			res, err := r.TableIV()
			return res.Render(), err
		}},
		{"fig3", "Figure 3: adaptive-transaction policies on Nginx", func(r bench.Runner) (string, error) {
			res, err := r.Figure3()
			return res.Render(), err
		}},
		{"fig5", "Figure 5: overhead vs transaction-window length", func(r bench.Runner) (string, error) {
			res, err := r.Figure5()
			return res.Render(), err
		}},
		{"fig6", "Figure 6: overhead vs abort-rate threshold θ", func(r bench.Runner) (string, error) {
			res, err := r.Figure6()
			return res.Render(), err
		}},
		{"fig7", "Figure 7: overhead vs working-set footprint", func(r bench.Runner) (string, error) {
			res, err := sharedFig7(r)
			return res.Render(), err
		}},
		{"fig8", "Figure 8: abort rate vs working-set footprint (same runs as fig7)", func(r bench.Runner) (string, error) {
			res, err := sharedFig7(r)
			return res.RenderFigure8(), err
		}},
		{"fig9", "Figure 9: throughput under a persistent injected fault", func(r bench.Runner) (string, error) {
			res, err := r.Figure9()
			return res.Render(), err
		}},
		{"realworld", "§VI-F: the real-world crash case studies", func(r bench.Runner) (string, error) {
			res, err := r.RealWorld()
			return res.Render(), err
		}},
		{"windows", "transaction-window composition per server", func(r bench.Runner) (string, error) {
			res, err := r.TxWindows()
			return res.Render(), err
		}},
		{"ablation", "ablations: divert, retry, geometry, masked writes, restart baseline", func(r bench.Runner) (string, error) {
			var sb strings.Builder
			d, err := r.AblationDivert()
			if err != nil {
				return "", err
			}
			sb.WriteString(d.Render() + "\n")
			rt, err := r.AblationRetry()
			if err != nil {
				return "", err
			}
			sb.WriteString(rt.Render() + "\n")
			g, err := r.AblationGeometry()
			if err != nil {
				return "", err
			}
			sb.WriteString(g.Render() + "\n")
			mw, err := r.AblationMaskedWrites()
			if err != nil {
				return "", err
			}
			sb.WriteString(mw.Render() + "\n")
			rb, err := r.AblationRestartBaseline()
			if err != nil {
				return "", err
			}
			sb.WriteString(rb.Render())
			return sb.String(), nil
		}},
		{"threads", "multi-worker scaling and abort-cause breakdown (conflict aborts)", func(r bench.Runner) (string, error) {
			res, err := r.Threads()
			return res.Render(), err
		}},
	}
}

func names() []string {
	var out []string
	for _, e := range experiments() {
		out = append(out, e.name)
	}
	return out
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		experiment = flag.String("experiment", "all",
			"experiment to run (all, "+strings.Join(names(), ", ")+")")
		list     = flag.Bool("list", false, "list experiment names and exit")
		requests = flag.Int("requests", 300, "requests per measurement run")
		faults   = flag.Int("faults", 12, "fault-injection experiments per server")
		seed     = flag.Int64("seed", 1, "seed for workloads, fault plans and the interrupt process")
		conc     = flag.Int("concurrency", 4, "simulated clients")
		parallel = flag.Int("parallel", 1, "worker pool size for measurement runs (1 = serial; results are identical)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments() {
			fmt.Printf("%-10s %s\n", e.name, e.desc)
		}
		return 0
	}

	r := bench.Runner{
		Requests:        *requests,
		Concurrency:     *conc,
		Seed:            *seed,
		FaultsPerServer: *faults,
		Parallelism:     *parallel,
	}

	ran := false
	for _, e := range experiments() {
		if *experiment != "all" && *experiment != e.name {
			continue
		}
		ran = true
		out, err := e.run(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "firebench: %s: %v\n", e.name, err)
			return 1
		}
		fmt.Println(out)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "firebench: unknown experiment %q\n", *experiment)
		fmt.Fprintln(os.Stderr, "available: all, "+strings.Join(names(), ", "))
		return 2
	}
	return 0
}
