// Command firebench regenerates the paper's evaluation: every table and
// figure of §VI, printed in the paper's layout.
//
// Usage:
//
//	firebench [-experiment all|table2|table3|table4|fig3|fig5|fig6|fig7|fig8|fig9|realworld]
//	          [-requests N] [-faults N] [-seed N] [-parallel N]
//
// -parallel fans each campaign's isolated measurement runs across N
// workers. Output is byte-identical to a serial run for the same seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/firestarter-go/firestarter/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		experiment = flag.String("experiment", "all", "experiment to run (all, table2, table3, table4, fig3, fig5, fig6, fig7, fig8, fig9, realworld, windows, ablation)")
		requests   = flag.Int("requests", 300, "requests per measurement run")
		faults     = flag.Int("faults", 12, "fault-injection experiments per server")
		seed       = flag.Int64("seed", 1, "seed for workloads, fault plans and the interrupt process")
		conc       = flag.Int("concurrency", 4, "simulated clients")
		parallel   = flag.Int("parallel", 1, "worker pool size for measurement runs (1 = serial; results are identical)")
	)
	flag.Parse()

	r := bench.Runner{
		Requests:        *requests,
		Concurrency:     *conc,
		Seed:            *seed,
		FaultsPerServer: *faults,
		Parallelism:     *parallel,
	}

	want := func(name string) bool {
		return *experiment == "all" || *experiment == name
	}
	ran := false
	fail := func(name string, err error) int {
		fmt.Fprintf(os.Stderr, "firebench: %s: %v\n", name, err)
		return 1
	}

	if want("table2") {
		ran = true
		fmt.Println(bench.TableII().Render())
	}
	if want("table3") {
		ran = true
		res, err := r.TableIII()
		if err != nil {
			return fail("table3", err)
		}
		fmt.Println(res.Render())
	}
	if want("table4") {
		ran = true
		res, err := r.TableIV()
		if err != nil {
			return fail("table4", err)
		}
		fmt.Println(res.Render())
	}
	if want("fig3") {
		ran = true
		res, err := r.Figure3()
		if err != nil {
			return fail("fig3", err)
		}
		fmt.Println(res.Render())
	}
	if want("fig5") {
		ran = true
		res, err := r.Figure5()
		if err != nil {
			return fail("fig5", err)
		}
		fmt.Println(res.Render())
	}
	if want("fig6") {
		ran = true
		res, err := r.Figure6()
		if err != nil {
			return fail("fig6", err)
		}
		fmt.Println(res.Render())
	}
	if want("fig7") || want("fig8") {
		ran = true
		res, err := r.Figure7()
		if err != nil {
			return fail("fig7", err)
		}
		if want("fig7") {
			fmt.Println(res.Render())
		}
		if want("fig8") {
			fmt.Println(res.RenderFigure8())
		}
	}
	if want("fig9") {
		ran = true
		res, err := r.Figure9()
		if err != nil {
			return fail("fig9", err)
		}
		fmt.Println(res.Render())
	}
	if want("realworld") {
		ran = true
		res, err := r.RealWorld()
		if err != nil {
			return fail("realworld", err)
		}
		fmt.Println(res.Render())
	}
	if want("windows") {
		ran = true
		res, err := r.TxWindows()
		if err != nil {
			return fail("windows", err)
		}
		fmt.Println(res.Render())
	}
	if want("ablation") {
		ran = true
		d, err := r.AblationDivert()
		if err != nil {
			return fail("ablation", err)
		}
		fmt.Println(d.Render())
		rt, err := r.AblationRetry()
		if err != nil {
			return fail("ablation", err)
		}
		fmt.Println(rt.Render())
		g, err := r.AblationGeometry()
		if err != nil {
			return fail("ablation", err)
		}
		fmt.Println(g.Render())
		mw, err := r.AblationMaskedWrites()
		if err != nil {
			return fail("ablation", err)
		}
		fmt.Println(mw.Render())
		rb, err := r.AblationRestartBaseline()
		if err != nil {
			return fail("ablation", err)
		}
		fmt.Println(rb.Render())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "firebench: unknown experiment %q\n", *experiment)
		fmt.Fprintln(os.Stderr, "available: all, "+strings.Join([]string{
			"table2", "table3", "table4", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "realworld", "windows", "ablation",
		}, ", "))
		return 2
	}
	return 0
}
