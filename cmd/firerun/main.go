// Command firerun executes a mini-C program or a built-in server under a
// chosen protection scheme, optionally driving it with a client workload
// and printing the recovery statistics.
//
// Usage:
//
//	firerun file.c                         # harden and run a program
//	firerun -mode vanilla file.c           # uninstrumented baseline
//	firerun -app nginx -requests 200       # drive a built-in server
package main

import (
	"flag"
	"fmt"
	"os"

	firestarter "github.com/firestarter-go/firestarter"
	"github.com/firestarter-go/firestarter/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		appName  = flag.String("app", "", "run a built-in server (nginx, apache, lighttpd, redis, postgres)")
		mode     = flag.String("mode", "hybrid", "protection: hybrid, htm, stm, vanilla")
		requests = flag.Int("requests", 100, "workload requests (built-in servers)")
		seed     = flag.Int64("seed", 1, "workload seed")
		stats    = flag.Bool("stats", true, "print recovery statistics")
		trace    = flag.Bool("trace", false, "print the recovery event trace")
	)
	flag.Parse()

	var opts []firestarter.Option
	switch *mode {
	case "hybrid":
	case "htm":
		opts = append(opts, firestarter.WithMode(firestarter.ModeHTMOnly))
	case "stm":
		opts = append(opts, firestarter.WithMode(firestarter.ModeSTMOnly))
	case "vanilla":
		opts = append(opts, firestarter.WithoutProtection())
	default:
		fmt.Fprintf(os.Stderr, "firerun: unknown mode %q\n", *mode)
		return 2
	}

	if *appName != "" {
		app, err := firestarter.Builtin(*appName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "firerun: %v\n", err)
			return 2
		}
		srv, err := firestarter.NewAppServer(app, opts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "firerun: %v\n", err)
			return 1
		}
		res := srv.DriveWorkload(app.Protocol, app.Port, *requests, 4, *seed)
		fmt.Printf("%s: completed %d requests (%d bad), %s cycles/request\n",
			app.Name, res.Completed, res.BadResp,
			workload.FormatCPR(res.CyclesPerRequest()))
		if res.ServerDied {
			fmt.Printf("server DIED (trap %d)\n", res.TrapCode)
		}
		if *stats && srv.Protected() {
			printStats(srv.Stats())
		}
		if res.ServerDied {
			return 1
		}
		return 0
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: firerun [flags] file.c | -app name")
		return 2
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "firerun: %v\n", err)
		return 1
	}
	prog, err := firestarter.Compile(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "firerun: %v\n", err)
		return 1
	}
	srv, err := firestarter.NewServer(prog, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "firerun: %v\n", err)
		return 1
	}
	if *trace && srv.Protected() {
		srv.Runtime().EnableTrace()
	}
	out := srv.Run(0)
	fmt.Print(srv.Stdout())
	switch out.Kind {
	case firestarter.OutExited:
		fmt.Printf("exited with code %d after %d cycles\n", srv.ExitCode(), srv.Cycles())
	case firestarter.OutTrapped:
		fmt.Printf("CRASHED: %v\n", out.Trap)
	case firestarter.OutBlocked:
		fmt.Println("blocked waiting for input (no workload attached)")
	}
	if *stats && srv.Protected() {
		printStats(srv.Stats())
	}
	if *trace && srv.Protected() {
		fmt.Print(srv.Runtime().RenderTrace())
	}
	if out.Kind == firestarter.OutTrapped {
		return 1
	}
	return 0
}

func printStats(st firestarter.Stats) {
	fmt.Printf("recovery stats: gates=%d htm=%d/%d stm=%d aborts=%d crashes=%d retries=%d injections=%d unrecovered=%d\n",
		st.GateExecs, st.HTMCommits, st.HTMBegins, st.STMBegins,
		st.HTMAborts, st.Crashes, st.Retries, st.Injections, st.Unrecovered)
}
