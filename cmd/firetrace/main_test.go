package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func loadSpans(t *testing.T, path string) *report {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, err := parseSpans(f)
	if err != nil {
		t.Fatal(err)
	}
	return analyze(spans)
}

func TestAnalyzeSample(t *testing.T) {
	rep := loadSpans(t, "testdata/sample.jsonl")
	if len(rep.Requests) != 4 {
		t.Fatalf("requests = %d, want 4", len(rep.Requests))
	}
	want := []struct {
		trace   int64
		outcome string
		rung    string
		latency int64
	}{
		{1, outDoneOK, "clean", 100},
		{2, outDoneBad, "injected", 400},
		{3, outLost, "shed", 160},
		{4, outDoneOK, "clean", 100},
	}
	for i, w := range want {
		r := rep.Requests[i]
		if r.Trace != w.trace || r.Outcome != w.outcome || r.Rung != w.rung || r.Latency() != w.latency {
			t.Errorf("request %d = {trace %d %s rung=%s lat=%d}, want %+v",
				i, r.Trace, r.Outcome, r.Rung, r.Latency(), w)
		}
	}
	if len(rep.Orphans) != 0 {
		t.Errorf("orphans = %v", rep.Orphans)
	}
	if errs := rep.violations(); len(errs) != 0 {
		t.Errorf("violations on clean trace: %v", errs)
	}

	sum := rep.summary("testdata/sample.jsonl")
	for _, w := range []string{
		"18 spans, 4 requests",
		"done-ok=2 done-bad=1 lost=1 unterminated=0; orphaned trace refs: 0",
		"clean=2 aborted=0 recovered=0 injected=1 shed=1",
	} {
		if !strings.Contains(sum, w) {
			t.Errorf("summary missing %q:\n%s", w, sum)
		}
	}
}

func TestBreakdownCycleAccounting(t *testing.T) {
	rep := loadSpans(t, "testdata/sample.jsonl")
	b := rep.breakdown()
	// begin@110→commit@150 = 40 committed; begin@310→crash@400 plus
	// begin@820→crash@900 = 170 aborted; recovered latency=50; reboot
	// backoff=5000.
	for _, w := range []string{
		"tx-committed             40        1",
		"tx-aborted              170        2",
		"rollback                 50        1",
		"reboot-wait            5000        1",
	} {
		if !strings.Contains(b, w) {
			t.Errorf("breakdown missing %q:\n%s", w, b)
		}
	}
	// Lost requests stay out of the latency table: only the two done-ok
	// (100 cycles each) and the injected done-bad (400) are ranked.
	if !strings.Contains(b, "all-done         3") {
		t.Errorf("all-done row wrong:\n%s", b)
	}
	// The offered column counts lost requests too: the shed rung renders
	// with 0 completions but 1 offered, and all-done offers all 4.
	for _, w := range []string{
		"shed             0        1",
		"all-done         3        4",
	} {
		if !strings.Contains(b, w) {
			t.Errorf("offered column missing %q:\n%s", w, b)
		}
	}
}

// Fleet traces carry replica/incarnation stamps; the breakdown grows a
// per-replica attribution table and the timeline annotates stamped
// spans. Unstamped traces (the other fixtures) must render unchanged —
// TestBreakdownCycleAccounting and TestTimelineDeterministic cover that
// by never mentioning replicas.
func TestFleetReplicaAttribution(t *testing.T) {
	rep := loadSpans(t, "testdata/fleet.jsonl")
	if len(rep.Requests) != 4 {
		t.Fatalf("requests = %d, want 4", len(rep.Requests))
	}
	// Serving replica comes from the req-start span: traces 1, 2 and 4
	// start on replica 1 (trace 4 on its second incarnation), trace 3 on
	// replica 2. The failover hand-off does not move trace 2's
	// attribution — it started on replica 1.
	for i, want := range []int{1, 1, 2, 1} {
		if rep.Requests[i].Replica != want {
			t.Errorf("request %d replica = %d, want %d", i, rep.Requests[i].Replica, want)
		}
	}

	b := rep.breakdown()
	if !strings.Contains(b, "Requests by serving replica") {
		t.Fatalf("breakdown missing replica table:\n%s", b)
	}
	// Replica 1 started 3 requests, all done-ok; replica 2 started one
	// (lost) and absorbed both hand-offs (the traced failover and the
	// untraced drain migration).
	for _, w := range []string{
		"1               3        3      0         0",
		"2               1        0      1         2",
	} {
		if !strings.Contains(b, w) {
			t.Errorf("replica table missing %q:\n%s", w, b)
		}
	}

	tl := rep.timeline(4)
	for _, w := range []string{
		"trace 2: 300 cycles, done-ok, rung=recovered, replica=1",
		"handoff replica=2 inc=1 cause=failover",
		"req-start replica=1 inc=2",
	} {
		if !strings.Contains(tl, w) {
			t.Errorf("timeline missing %q:\n%s", w, tl)
		}
	}

	// The fixture is causally clean: every started trace terminates once.
	if errs := rep.violations(); len(errs) != 0 {
		t.Errorf("violations on fleet fixture: %v", errs)
	}

	// A replica-free trace must not grow the table.
	plain := loadSpans(t, "testdata/sample.jsonl")
	if strings.Contains(plain.breakdown(), "Requests by serving replica") {
		t.Error("replica table rendered for an unstamped trace")
	}
}

func TestViolations(t *testing.T) {
	rep := loadSpans(t, "testdata/violations.jsonl")
	errs := rep.violations()
	joined := strings.Join(errs, "\n")
	for _, w := range []string{
		"trace 10: no terminal span",
		"trace 11: orphaned trace reference",
		"trace 12: duplicate terminal span",
	} {
		if !strings.Contains(joined, w) {
			t.Errorf("missing violation %q in:\n%s", w, joined)
		}
	}
	if len(errs) != 3 {
		t.Errorf("got %d violations, want 3:\n%s", len(errs), joined)
	}
}

func TestTimelineDeterministic(t *testing.T) {
	rep := loadSpans(t, "testdata/sample.jsonl")
	tl := rep.timeline(2)
	if !strings.Contains(tl, "Slowest 2 terminated requests:") {
		t.Fatalf("timeline header wrong:\n%s", tl)
	}
	// Slowest first: trace 2 (400 cycles), then trace 3 (160).
	i2, i3 := strings.Index(tl, "trace 2:"), strings.Index(tl, "trace 3:")
	if i2 < 0 || i3 < 0 || i2 > i3 {
		t.Errorf("timeline order wrong:\n%s", tl)
	}
	if tl != rep.timeline(2) {
		t.Error("timeline not deterministic")
	}
}

// TestTimelineRendersDomainEvents covers the rewind-and-discard span
// kinds: a request whose crash transaction ran under the domain variant
// must render its switch, violation (with the trapping address) and O(1)
// discard inline in the timeline, attribute to the recovered rung, and
// pass -strict.
func TestTimelineRendersDomainEvents(t *testing.T) {
	rep := loadSpans(t, "testdata/domains.jsonl")
	if len(rep.Requests) != 1 {
		t.Fatalf("requests = %d, want 1", len(rep.Requests))
	}
	r := rep.Requests[0]
	if r.Outcome != outDoneOK || r.Rung != "recovered" {
		t.Fatalf("request = %s rung=%s, want done-ok/recovered", r.Outcome, r.Rung)
	}
	if errs := rep.violations(); len(errs) != 0 {
		t.Fatalf("strict violations on domain trace: %v", errs)
	}
	tl := rep.timeline(1)
	for _, w := range []string{
		"domain-switch dom=3",
		"domain-violation addr=0x60000040 dom=3",
		"crash call=arena_alloc variant=domain cause=domain-violation",
		"domain-discard variant=domain dom=3 mark=64",
	} {
		if !strings.Contains(tl, w) {
			t.Errorf("timeline missing %q:\n%s", w, tl)
		}
	}
}

func TestWriteChromeIsValidJSON(t *testing.T) {
	rep := loadSpans(t, "testdata/sample.jsonl")
	var buf bytes.Buffer
	if err := rep.writeChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output is not JSON: %v\n%s", err, buf.String())
	}
	var slices, instants, requests int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			if e["cat"] == "request" {
				requests++
			} else {
				slices++
			}
		case "i":
			instants++
		}
	}
	// 3 tx slices (commit + two crashes), 4 terminated requests, and
	// instants for crash/recovered/inject/shed/reboot events.
	if slices != 3 || requests != 4 || instants == 0 {
		t.Errorf("chrome events: %d tx slices, %d requests, %d instants\n%s",
			slices, requests, instants, buf.String())
	}
	var again bytes.Buffer
	if err := rep.writeChrome(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("chrome export not deterministic")
	}
}

func TestWriteFolded(t *testing.T) {
	pf, err := os.Open("testdata/profile.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	var buf bytes.Buffer
	if err := writeFolded(&buf, pf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "serve_request 400\nlib:memcpy 500\n"
	if got != want {
		t.Errorf("folded = %q, want %q", got, want)
	}
}
