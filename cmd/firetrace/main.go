// Command firetrace analyzes a firebench span trace (the -trace-out
// JSONL export from the observability or chaos experiments). It
// reconstructs every request's causal chain from its trace ID,
// attributes each request to the coarsest recovery-ladder rung that
// touched it, summarizes terminal outcomes and tail latency, and can
// re-export the trace as Chrome trace_event JSON or the guest profile
// as flamegraph folded stacks.
//
// Usage:
//
//	firetrace [-breakdown] [-timeline N] [-strict]
//	          [-chrome FILE] [-folded FILE] [-profile FILE] TRACE
//	firetrace -manifest MANIFEST
//	firetrace -replay MANIFEST [-stop-at-cycle N] [-reverse-step]
//	          [-ckpt-every N] [-ckpt-ring N] [-replay-spans FILE]
//
// The summary always prints: span/request totals, terminal outcomes
// (done-ok / done-bad / lost / unterminated), orphaned trace
// references, and the per-rung request counts. -breakdown adds the
// per-rung tail-latency table — completed count, offered count (every
// request attributed to the rung, lost ones included, so open-loop
// sheds stay visible), and p50/p90/p99/p999 in cycles — and the
// campaign cycle breakdown (tx-committed, tx-aborted, rollback,
// reboot-wait). -timeline N prints the N slowest terminated requests
// with their full span sequences. -strict exits non-zero if any request
// is unterminated, any trace reference is orphaned, or any trace has a
// duplicated start/terminal.
//
// -chrome writes Chrome trace_event JSON (load via chrome://tracing or
// https://ui.perfetto.dev): requests are "X" slices on pid 1, crash
// transactions are "X" slices per thread on pid 0, recovery events are
// instants. -folded converts a -profile JSONL export into single-frame
// folded stacks ("name cycles", library models prefixed lib:) whose
// counts sum to the machine's total cycles.
//
// -manifest pretty-prints a flight-recorder manifest (the firebench
// -record-out output). -replay re-executes one: the recorded world is
// rebuilt from the manifest and re-driven, verifying the live span
// hash chain against the recording — the first divergent span is a
// hard error naming both sides. By default the replay halts at the
// recorded faulting instruction and dumps the guest state (registers,
// backtrace, memory digest, open fds); -stop-at-cycle 0 verifies the
// whole run instead, -stop-at-cycle N halts at cycle N. -reverse-step
// additionally re-executes to the boundary one retired instruction
// earlier (rr-style: deterministic re-execution from boot, with the
// -ckpt-every periodic checkpoint ring cross-checked between the two
// passes as determinism anchors). -replay-spans writes the replayed
// span stream as JSONL, byte-identical to the recording's companion
// file when verification passes.
//
// All output is byte-deterministic for a given input.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/firestarter-go/firestarter/internal/obsv"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		breakdown = flag.Bool("breakdown", false, "print the per-rung latency table and cycle breakdown")
		timeline  = flag.Int("timeline", 0, "print the N slowest completed requests as span timelines")
		strict    = flag.Bool("strict", false, "exit non-zero on unterminated requests or causality violations")
		chrome    = flag.String("chrome", "", "write Chrome trace_event JSON to this file")
		folded    = flag.String("folded", "", "write flamegraph folded stacks to this file (needs -profile)")
		profile   = flag.String("profile", "", "guest profile JSONL (firebench -profile export) for -folded")

		manifest    = flag.String("manifest", "", "pretty-print this flight-recorder manifest and exit")
		replayF     = flag.String("replay", "", "re-execute this flight-recorder manifest, verifying the span chain")
		stopAt      = flag.Int64("stop-at-cycle", -1, "replay halt point: -1 the recorded faulting instruction, 0 run to completion, N cycle N")
		reverseStep = flag.Bool("reverse-step", false, "after stopping, re-execute to the boundary one instruction earlier")
		ckptEvery   = flag.Int64("ckpt-every", 250_000, "checkpoint-ring capture period in cycles during replay (0 disables)")
		ckptRing    = flag.Int("ckpt-ring", 64, "checkpoint-ring depth during replay")
		replaySpans = flag.String("replay-spans", "", "write the replayed span stream as JSONL to this file")
	)
	flag.Parse()
	if *manifest != "" {
		return printManifest(*manifest)
	}
	if *replayF != "" {
		return runReplay(*replayF, *stopAt, *reverseStep, *ckptEvery, *ckptRing, *replaySpans)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "firetrace: exactly one trace file required")
		return 2
	}
	if *folded != "" && *profile == "" {
		fmt.Fprintln(os.Stderr, "firetrace: -folded requires -profile")
		return 2
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "firetrace: %v\n", err)
		return 2
	}
	spans, err := parseSpans(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "firetrace: %s: %v\n", path, err)
		return 2
	}

	rep := analyze(spans)
	fmt.Print(rep.summary(path))
	if *breakdown {
		fmt.Print("\n" + rep.breakdown())
	}
	if *timeline > 0 {
		fmt.Print("\n" + rep.timeline(*timeline))
	}
	if *chrome != "" {
		if err := writeFile(*chrome, rep.writeChrome); err != nil {
			fmt.Fprintf(os.Stderr, "firetrace: %v\n", err)
			return 2
		}
	}
	if *folded != "" {
		pf, err := os.Open(*profile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "firetrace: %v\n", err)
			return 2
		}
		err = writeFile(*folded, func(w io.Writer) error { return writeFolded(w, pf) })
		pf.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "firetrace: %v\n", err)
			return 2
		}
	}
	if *strict {
		if errs := rep.violations(); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "firetrace: %s: %s\n", path, e)
			}
			return 1
		}
	}
	return 0
}

// writeFile writes through render to path, propagating close errors.
func writeFile(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseSpans decodes a span-trace JSONL stream.
func parseSpans(r io.Reader) ([]obsv.SpanEvent, error) {
	var spans []obsv.SpanEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e obsv.SpanEvent
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		spans = append(spans, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return spans, nil
}

// Request outcomes.
const (
	outDoneOK       = "done-ok"
	outDoneBad      = "done-bad"
	outLost         = "lost"
	outUnterminated = "unterminated"
)

// Rung attribution, coarsest first: the priority order firetrace uses
// when several recovery mechanisms touched one request.
var rungOrder = []string{"shed", "injected", "recovered", "aborted", "clean"}

// rungOf maps a span kind to the attribution rung it implies (empty:
// the kind does not affect attribution).
func rungOf(kind string) string {
	switch kind {
	case obsv.SpanShed:
		return "shed"
	case obsv.SpanInject:
		return "injected"
	case obsv.SpanCrash, obsv.SpanRetry, obsv.SpanRecovered, obsv.SpanUnrecovered:
		return "recovered"
	case obsv.SpanAbort, obsv.SpanLatchSTM:
		return "aborted"
	}
	return ""
}

// rungRank orders rungs coarsest-first for attribution.
func rungRank(r string) int {
	for i, name := range rungOrder {
		if name == r {
			return i
		}
	}
	return len(rungOrder)
}

// request is one reconstructed causal chain.
type request struct {
	Trace   int64
	Start   int64 // req-start cycles (-1: server never read it)
	End     int64 // terminal cycles (-1: unterminated)
	Outcome string
	Cause   string // req-lost cause
	Rung    string
	Replica int              // serving replica at req-start (0: not a fleet trace)
	Spans   []obsv.SpanEvent // every span referencing the trace, in order
}

// Latency returns the request's req-start→terminal latency in cycles,
// or -1 if either end is missing.
func (r *request) Latency() int64 {
	if r.Start < 0 || r.End < 0 {
		return -1
	}
	return r.End - r.Start
}

// report is the analyzed trace.
type report struct {
	Spans    []obsv.SpanEvent
	Requests []*request // first-appearance order
	Orphans  []int64    // traces referenced by non-request spans but never started
	dupErrs  []string   // duplicated start/terminal findings
}

// analyze reconstructs every request chain from the span stream.
func analyze(spans []obsv.SpanEvent) *report {
	rep := &report{Spans: spans}
	byTrace := map[int64]*request{}
	get := func(tr int64) *request {
		r := byTrace[tr]
		if r == nil {
			r = &request{Trace: tr, Start: -1, End: -1, Outcome: outUnterminated, Rung: "clean"}
			byTrace[tr] = r
			rep.Requests = append(rep.Requests, r)
		}
		return r
	}
	referenced := map[int64]bool{}
	for _, e := range spans {
		switch e.Kind {
		case obsv.SpanReqStart:
			r := get(e.Trace)
			if r.Start >= 0 {
				rep.dupErrs = append(rep.dupErrs, fmt.Sprintf("trace %d: duplicate req-start", e.Trace))
			}
			r.Start = e.Cycles
			r.Replica = e.Replica
			r.Spans = append(r.Spans, e)
		case obsv.SpanReqDone, obsv.SpanReqLost:
			r := get(e.Trace)
			if r.End >= 0 {
				rep.dupErrs = append(rep.dupErrs, fmt.Sprintf("trace %d: duplicate terminal span", e.Trace))
			}
			r.End = e.Cycles
			if e.Kind == obsv.SpanReqLost {
				r.Outcome = outLost
				r.Cause = e.Cause
			} else if e.Detail == "ok" {
				r.Outcome = outDoneOK
			} else {
				r.Outcome = outDoneBad
			}
			r.Spans = append(r.Spans, e)
		default:
			if e.Trace == 0 {
				continue
			}
			referenced[e.Trace] = true
			r := get(e.Trace)
			r.Spans = append(r.Spans, e)
			if rung := rungOf(e.Kind); rung != "" && rungRank(rung) < rungRank(r.Rung) {
				r.Rung = rung
			}
		}
	}
	for tr := range referenced {
		if r := byTrace[tr]; r.Start < 0 {
			rep.Orphans = append(rep.Orphans, tr)
		}
	}
	sort.Slice(rep.Orphans, func(i, j int) bool { return rep.Orphans[i] < rep.Orphans[j] })
	// A trace that was only ever referenced is an orphan, not a request:
	// it has no lifecycle of its own to report an outcome for.
	kept := rep.Requests[:0]
	for _, r := range rep.Requests {
		if r.Start >= 0 || r.End >= 0 {
			kept = append(kept, r)
		}
	}
	rep.Requests = kept
	return rep
}

// violations returns the findings -strict fails on.
func (rep *report) violations() []string {
	var errs []string
	errs = append(errs, rep.dupErrs...)
	for _, r := range rep.Requests {
		if r.Outcome == outUnterminated {
			errs = append(errs, fmt.Sprintf("trace %d: no terminal span", r.Trace))
		}
	}
	for _, tr := range rep.Orphans {
		errs = append(errs, fmt.Sprintf("trace %d: orphaned trace reference (no req-start)", tr))
	}
	return errs
}

// outcomes tallies terminal outcomes.
func (rep *report) outcomes() map[string]int {
	out := map[string]int{}
	for _, r := range rep.Requests {
		out[r.Outcome]++
	}
	return out
}

// summary renders the header block every invocation prints.
func (rep *report) summary(path string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "firetrace: %s: %d spans, %d requests\n", path, len(rep.Spans), len(rep.Requests))
	o := rep.outcomes()
	fmt.Fprintf(&sb, "outcomes: done-ok=%d done-bad=%d lost=%d unterminated=%d; orphaned trace refs: %d\n",
		o[outDoneOK], o[outDoneBad], o[outLost], o[outUnterminated], len(rep.Orphans))
	rungs := map[string]int{}
	for _, r := range rep.Requests {
		rungs[r.Rung]++
	}
	sb.WriteString("rungs:")
	for i := len(rungOrder) - 1; i >= 0; i-- {
		fmt.Fprintf(&sb, " %s=%d", rungOrder[i], rungs[rungOrder[i]])
	}
	sb.WriteString("\n")
	return sb.String()
}

// breakdown renders the per-rung latency table and the campaign cycle
// breakdown.
func (rep *report) breakdown() string {
	var sb strings.Builder
	sb.WriteString("Request latency by rung (cycles, req-start to terminal; offered counts every attributed request, lost included):\n")
	fmt.Fprintf(&sb, "%-10s %7s %8s %10s %10s %10s %10s %10s\n",
		"rung", "count", "offered", "p50", "p90", "p99", "p999", "max")
	hists := map[string]*obsv.Hist{}
	offered := map[string]int{}
	all := obsv.NewHist()
	for _, r := range rep.Requests {
		offered[r.Rung]++
		lat := r.Latency()
		if lat < 0 || r.Outcome == outLost {
			continue
		}
		h := hists[r.Rung]
		if h == nil {
			h = obsv.NewHist()
			hists[r.Rung] = h
		}
		h.Observe(lat)
		all.Observe(lat)
	}
	row := func(name string, h *obsv.Hist, off int) {
		if off == 0 && (h == nil || h.Count() == 0) {
			return
		}
		if h == nil {
			h = obsv.NewHist()
		}
		p := h.Percentiles()
		fmt.Fprintf(&sb, "%-10s %7d %8d %10d %10d %10d %10d %10d\n",
			name, h.Count(), off, p.P50, p.P90, p.P99, p.P999, h.Max())
	}
	for i := len(rungOrder) - 1; i >= 0; i-- {
		row(rungOrder[i], hists[rungOrder[i]], offered[rungOrder[i]])
	}
	row("all-done", all, len(rep.Requests))

	// Per-replica attribution (fleet traces only): which replica served
	// each request's start, and which replicas absorbed migrated
	// connections. Hand-offs count against the destination replica — the
	// one that picked up the work.
	type repRow struct {
		started, doneOK, lost, handoffsIn int
		h                                 *obsv.Hist
	}
	byRep := map[int]*repRow{}
	getRep := func(id int) *repRow {
		row := byRep[id]
		if row == nil {
			row = &repRow{h: obsv.NewHist()}
			byRep[id] = row
		}
		return row
	}
	for _, r := range rep.Requests {
		if r.Replica == 0 {
			continue
		}
		row := getRep(r.Replica)
		row.started++
		switch r.Outcome {
		case outDoneOK:
			row.doneOK++
		case outLost:
			row.lost++
		}
		if lat := r.Latency(); lat >= 0 && r.Outcome != outLost {
			row.h.Observe(lat)
		}
	}
	for _, e := range rep.Spans {
		if e.Kind == obsv.SpanHandoff && e.Replica != 0 {
			getRep(e.Replica).handoffsIn++
		}
	}
	if len(byRep) > 0 {
		ids := make([]int, 0, len(byRep))
		for id := range byRep {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		sb.WriteString("\nRequests by serving replica (req-start attribution; handoffs land on the destination):\n")
		fmt.Fprintf(&sb, "%-8s %8s %8s %6s %9s %10s %10s %10s\n",
			"replica", "started", "done-ok", "lost", "handoffs", "p50", "p99", "p999")
		for _, id := range ids {
			row := byRep[id]
			p := row.h.Percentiles()
			fmt.Fprintf(&sb, "%-8d %8d %8d %6d %9d %10d %10d %10d\n",
				id, row.started, row.doneOK, row.lost, row.handoffsIn, p.P50, p.P99, p.P999)
		}
	}

	// Cycle breakdown: where the campaign's time went. Transaction spans
	// pair begin→commit/abort/crash per thread; rollback cost is the
	// trap→resume latency the recovered span reports; reboot-wait is the
	// supervisor's restart backoff.
	var committed, aborted, rollback, rebootWait int64
	var commits, aborts, rollbacks, reboots int64
	lastBegin := map[int]int64{}
	for _, e := range rep.Spans {
		switch e.Kind {
		case obsv.SpanBegin:
			lastBegin[e.Thread] = e.Cycles
		case obsv.SpanCommit:
			if at, ok := lastBegin[e.Thread]; ok {
				committed += e.Cycles - at
				commits++
				delete(lastBegin, e.Thread)
			}
		case obsv.SpanAbort, obsv.SpanCrash:
			if at, ok := lastBegin[e.Thread]; ok {
				aborted += e.Cycles - at
				aborts++
				delete(lastBegin, e.Thread)
			}
		case obsv.SpanRecovered:
			rollback += detailInt(e.Detail, "latency=")
			rollbacks++
		case obsv.SpanReboot:
			rebootWait += detailInt(e.Detail, "backoff=")
			reboots++
		}
	}
	sb.WriteString("\nCycle breakdown:\n")
	fmt.Fprintf(&sb, "%-14s %12s %8s\n", "category", "cycles", "events")
	fmt.Fprintf(&sb, "%-14s %12d %8d\n", "tx-committed", committed, commits)
	fmt.Fprintf(&sb, "%-14s %12d %8d\n", "tx-aborted", aborted, aborts)
	fmt.Fprintf(&sb, "%-14s %12d %8d\n", "rollback", rollback, rollbacks)
	fmt.Fprintf(&sb, "%-14s %12d %8d\n", "reboot-wait", rebootWait, reboots)
	return sb.String()
}

// detailInt parses "key=<int>" out of a span detail string (0 if absent).
func detailInt(detail, key string) int64 {
	for _, field := range strings.Fields(detail) {
		if v, ok := strings.CutPrefix(field, key); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err == nil {
				return n
			}
		}
	}
	return 0
}

// timeline renders the n slowest terminated requests (including lost
// ones — their delivery-to-loss span is often the interesting tail)
// with their span sequences, ties broken by trace ID for determinism.
func (rep *report) timeline(n int) string {
	var done []*request
	for _, r := range rep.Requests {
		if r.Latency() >= 0 {
			done = append(done, r)
		}
	}
	sort.Slice(done, func(i, j int) bool {
		if li, lj := done[i].Latency(), done[j].Latency(); li != lj {
			return li > lj
		}
		return done[i].Trace < done[j].Trace
	})
	if n > len(done) {
		n = len(done)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Slowest %d terminated requests:\n", n)
	for _, r := range done[:n] {
		fmt.Fprintf(&sb, "trace %d: %d cycles, %s, rung=%s", r.Trace, r.Latency(), r.Outcome, r.Rung)
		if r.Replica != 0 {
			fmt.Fprintf(&sb, ", replica=%d", r.Replica)
		}
		sb.WriteString("\n")
		for _, e := range r.Spans {
			fmt.Fprintf(&sb, "  @%-10d %s", e.Cycles, e.Kind)
			if e.Replica != 0 {
				fmt.Fprintf(&sb, " replica=%d", e.Replica)
				if e.Inc != 0 {
					fmt.Fprintf(&sb, " inc=%d", e.Inc)
				}
			}
			if e.Call != "" {
				fmt.Fprintf(&sb, " call=%s", e.Call)
			}
			if e.Variant != "" {
				fmt.Fprintf(&sb, " variant=%s", e.Variant)
			}
			if e.Cause != "" {
				fmt.Fprintf(&sb, " cause=%s", e.Cause)
			}
			if e.Detail != "" {
				fmt.Fprintf(&sb, " %s", e.Detail)
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// chromeEvent is one trace_event entry (the subset of fields the Chrome
// tracing and Perfetto viewers read).
type chromeEvent struct {
	Name  string `json:"name"`
	Cat   string `json:"cat"`
	Phase string `json:"ph"`
	TS    int64  `json:"ts"`
	Dur   int64  `json:"dur,omitempty"`
	PID   int    `json:"pid"`
	TID   int    `json:"tid"`
	Scope string `json:"s,omitempty"`
}

// writeChrome renders the trace as Chrome trace_event JSON: requests as
// duration slices on pid 1 (tid = serving thread at req-start),
// transactions as duration slices per thread on pid 0, recovery events
// as thread-scoped instants. Cycles map 1:1 onto the viewer's
// microsecond axis.
func (rep *report) writeChrome(w io.Writer) error {
	var events []chromeEvent
	lastBegin := map[int][]obsv.SpanEvent{}
	for _, e := range rep.Spans {
		switch e.Kind {
		case obsv.SpanBegin:
			lastBegin[e.Thread] = append(lastBegin[e.Thread][:0], e)
		case obsv.SpanCommit, obsv.SpanAbort, obsv.SpanCrash:
			if open := lastBegin[e.Thread]; len(open) > 0 {
				b := open[0]
				name := "tx-" + e.Kind
				if b.Call != "" {
					name += " " + b.Call
				}
				events = append(events, chromeEvent{
					Name: name, Cat: "tx", Phase: "X",
					TS: b.Cycles, Dur: e.Cycles - b.Cycles, PID: 0, TID: e.Thread,
				})
				lastBegin[e.Thread] = open[:0]
			}
		}
		if rung := rungOf(e.Kind); rung != "" || e.Kind == obsv.SpanReboot || e.Kind == obsv.SpanBreakerOpen {
			name := e.Kind
			if e.Cause != "" {
				name += " (" + e.Cause + ")"
			}
			events = append(events, chromeEvent{
				Name: name, Cat: "recovery", Phase: "i",
				TS: e.Cycles, PID: 0, TID: e.Thread, Scope: "t",
			})
		}
	}
	for _, r := range rep.Requests {
		if r.Latency() < 0 {
			continue
		}
		tid := 0
		if len(r.Spans) > 0 {
			tid = r.Spans[0].Thread
		}
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("req %d (%s)", r.Trace, r.Outcome), Cat: "request", Phase: "X",
			TS: r.Start, Dur: r.Latency(), PID: 1, TID: tid,
		})
	}
	var sb strings.Builder
	sb.WriteString("{\"traceEvents\":[")
	for i, e := range events {
		if i > 0 {
			sb.WriteString(",")
		}
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		sb.Write(b)
	}
	sb.WriteString("]}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// profileRow is the subset of the guest-profile JSONL schema -folded
// reads.
type profileRow struct {
	Type string `json:"type"`
	Name string `json:"name"`
	Lib  bool   `json:"lib"`
	Flat int64  `json:"flat_cycles"`
}

// writeFolded converts a guest-profile JSONL stream to folded stacks:
// one line per function, "name flat_cycles", library models prefixed
// lib: — the flamegraph weights sum to the machine's total cycles.
// Zero-flat rows are skipped (they would render as empty frames).
func writeFolded(w io.Writer, profile io.Reader) error {
	sc := bufio.NewScanner(profile)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	var out strings.Builder
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var row profileRow
		if err := json.Unmarshal(line, &row); err != nil {
			return fmt.Errorf("profile line %d: %v", lineNo, err)
		}
		if row.Type != "func" || row.Flat == 0 {
			continue
		}
		name := row.Name
		if row.Lib {
			name = "lib:" + name
		}
		fmt.Fprintf(&out, "%s %d\n", name, row.Flat)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	_, err := io.WriteString(w, out.String())
	return err
}
