package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/firestarter-go/firestarter/internal/replay"
)

// printManifest renders a flight-recorder manifest for humans. Only the
// manifest JSON is read — the companion span stream is not required, so
// a manifest can be inspected even when its spans were moved or pruned.
func printManifest(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "firetrace: %v\n", err)
		return 2
	}
	var man replay.Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		fmt.Fprintf(os.Stderr, "firetrace: %s: %v\n", path, err)
		return 2
	}
	fmt.Print(renderManifest(path, man))
	return 0
}

// renderManifest formats the manifest summary block.
func renderManifest(path string, man replay.Manifest) string {
	out := fmt.Sprintf("manifest: %s (v%d)\n", path, man.Version)
	out += fmt.Sprintf("kind: %s  app: %s", man.Kind, man.App)
	backend := man.Backend
	if backend == "" {
		backend = "tree"
	}
	out += fmt.Sprintf("  backend: %s\n", backend)
	if man.Fault != nil {
		out += fmt.Sprintf("fault: %s\n", *man.Fault)
	}
	if man.Incarnation > 0 {
		out += fmt.Sprintf("incarnation: %d\n", man.Incarnation)
	}
	sc := man.Schedule
	switch sc.Kind {
	case "open":
		out += fmt.Sprintf("schedule: open %s, seed %d", sc.Proto, sc.Seed)
		if sc.Open != nil {
			out += fmt.Sprintf(", %s %.2f arrivals/Mcycle, %d arrivals, %d clients",
				sc.Open.Shape, sc.Open.RatePerMcycle, sc.Open.Total, sc.Open.Clients)
		}
		out += "\n"
	default:
		out += fmt.Sprintf("schedule: %s %s, seed %d, %d requests, concurrency %d, trace base %d\n",
			sc.Kind, sc.Proto, sc.Seed, sc.Requests, sc.Concurrency, sc.TraceBase)
	}
	out += fmt.Sprintf("outcome: %s at cycle %d\n", man.Outcome, man.FaultCycle)
	out += fmt.Sprintf("final: %d cycles", man.FinalCycles)
	if man.FinalSteps > 0 {
		out += fmt.Sprintf(", %d steps", man.FinalSteps)
	}
	out += "\n"
	out += fmt.Sprintf("spans: %d recorded", len(man.SpanChain))
	if man.SpansFile != "" {
		out += " in " + man.SpansFile
	}
	out += fmt.Sprintf(", fingerprint %s\n", man.Fingerprint)
	return out
}

// runReplay re-executes a recording and reports the verification
// verdict, the stop-point state dump, and (with -reverse-step) the
// state one retired instruction earlier.
func runReplay(path string, stopAt int64, reverse bool, ckptEvery int64, ckptRing int, spansOut string) int {
	rec, err := replay.Load(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "firetrace: %v\n", err)
		return 2
	}
	man := rec.Manifest
	if man.Kind == replay.KindOpenLoop && stopAt < 0 {
		// Openloop manifests replay verify-only; the faulting-instruction
		// default only applies to single-machine incarnations.
		stopAt = 0
	}
	r := &replay.Runner{Rec: rec, StopAt: stopAt, CkptEvery: ckptEvery, CkptRing: ckptRing}
	fmt.Printf("replay: %s: %s %s, outcome %s, %d recorded spans\n",
		path, man.Kind, man.App, man.Outcome, len(rec.Spans))

	var live *replay.Result
	if reverse {
		rr, err := r.ReverseStep()
		if err != nil {
			fmt.Fprintf(os.Stderr, "firetrace: %v\n", err)
			return 1
		}
		fmt.Printf("stopped at the target boundary:\n%s", rr.At.Dump.Render())
		fmt.Printf("reverse-step: one retired instruction earlier (%d checkpoint anchors verified):\n%s",
			rr.Anchors, rr.Prev.Dump.Render())
		fmt.Printf("verified %d spans against the recording\n", rr.At.Verified)
		live = rr.At
	} else {
		res, err := r.Replay()
		if err != nil {
			fmt.Fprintf(os.Stderr, "firetrace: %v\n", err)
			return 1
		}
		if res.Stopped {
			fmt.Print(res.Dump.Render())
		}
		fmt.Printf("verified %d/%d spans, fingerprint %016x\n",
			res.Verified, len(rec.Spans), res.Fingerprint)
		live = res
	}
	if spansOut != "" {
		if err := writeFile(spansOut, func(w io.Writer) error {
			return replay.WriteSpans(w, live.Spans)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "firetrace: %v\n", err)
			return 2
		}
	}
	return 0
}
