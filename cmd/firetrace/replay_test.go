package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"github.com/firestarter-go/firestarter/internal/replay"
)

// The -manifest renderer never executes anything, so the fixture stays
// valid even as the guest apps evolve; the replay path itself is
// exercised by the internal/replay round-trip tests and make
// replay-smoke.
func TestRenderManifestFixture(t *testing.T) {
	data, err := os.ReadFile("testdata/manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	var man replay.Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatal(err)
	}
	out := renderManifest("testdata/manifest.json", man)
	for _, w := range []string{
		"manifest: testdata/manifest.json (v1)",
		"kind: incarnation  app: apache  backend: tree",
		"fault: #1 flip-branch at sa_int.b4.2",
		"incarnation: 8",
		"schedule: closed http, seed 7011, 8 requests, concurrency 2, trace base 16",
		"outcome: breaker-open at cycle 7029",
		"final: 7029 cycles, 2263 steps",
		"spans: 56 recorded in manifest.spans.jsonl, fingerprint 9b76ea4f6cdbf421",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("render missing %q:\n%s", w, out)
		}
	}
}

// The fixture's companion span stream must keep reproducing the
// manifest's hash chain — Load recomputes and rejects mismatches.
func TestLoadFixtureRecording(t *testing.T) {
	rec, err := replay.Load("testdata/manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Spans) != 56 {
		t.Fatalf("spans = %d, want 56", len(rec.Spans))
	}
	if rec.Manifest.Outcome != replay.OutcomeBreakerOpen {
		t.Fatalf("outcome = %q", rec.Manifest.Outcome)
	}
}
