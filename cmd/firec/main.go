// Command firec compiles a mini-C source file and reports what the
// FIRestarter pipeline would do with it: the library-call site analysis
// (gates / embedded / breaks) and, with -instrument, the transformed IR.
//
// Usage:
//
//	firec [-dump] [-instrument] [-sites] file.c
//	firec -app nginx -sites        # analyze a built-in server instead
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/firestarter-go/firestarter/internal/analysis"
	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/ir"
	"github.com/firestarter-go/firestarter/internal/libmodel"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/minic"
	"github.com/firestarter-go/firestarter/internal/transform"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		dump       = flag.Bool("dump", false, "print the compiled IR")
		instrument = flag.Bool("instrument", false, "apply the FIRestarter passes and print the instrumented IR")
		sites      = flag.Bool("sites", true, "print the library-call site analysis")
		appName    = flag.String("app", "", "analyze a built-in server (nginx, apache, lighttpd, redis, postgres) instead of a file")
	)
	flag.Parse()

	var prog *ir.Program
	var err error
	switch {
	case *appName != "":
		app := apps.ByName(*appName)
		if app == nil {
			fmt.Fprintf(os.Stderr, "firec: unknown app %q\n", *appName)
			return 2
		}
		prog, err = app.Compile()
	case flag.NArg() == 1:
		src, rerr := os.ReadFile(flag.Arg(0))
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "firec: %v\n", rerr)
			return 1
		}
		prog, err = minic.Compile(string(src), minic.Config{KnownLib: libsim.Known})
	default:
		fmt.Fprintln(os.Stderr, "usage: firec [-dump] [-instrument] [-sites] file.c | -app name")
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "firec: %v\n", err)
		return 1
	}

	if *sites {
		res := analysis.Analyze(prog.Clone(), libmodel.Default())
		gates, embeds, breaks := res.Counts()
		fmt.Printf("library call sites: %d total — %d gates, %d embedded, %d breaks\n",
			len(res.Sites), gates, embeds, breaks)
		for _, s := range res.Sites {
			fmt.Printf("  site %3d  %-14s %-6s checked=%-5v at %s.b%d\n",
				s.ID, s.Name, s.Role, s.Checked, s.Func, s.Block)
		}
	}
	if *dump {
		fmt.Println(prog.Dump())
	}
	if *instrument {
		tr, terr := transform.Apply(prog, nil)
		if terr != nil {
			fmt.Fprintf(os.Stderr, "firec: instrument: %v\n", terr)
			return 1
		}
		fmt.Printf("instrumented: %d -> %d instructions (%d gates)\n",
			prog.InstrCount(), tr.Prog.InstrCount(), len(tr.Gates))
		fmt.Println(tr.Prog.Dump())
	}
	return 0
}
