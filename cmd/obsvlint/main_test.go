package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLintCorruptFileReportsEveryLine is the regression test for the
// stop-at-first-error behavior: a corrupt line used to mask every later
// problem in the file. The linter must now report each damaged line and
// keep validating past it.
func TestLintCorruptFileReportsEveryLine(t *testing.T) {
	errs := lintFile("testdata/corrupt.jsonl", "trace", false)
	if len(errs) == 0 {
		t.Fatal("corrupt file linted clean")
	}
	wants := []string{
		"line 2: invalid JSON",
		"line 3: invalid JSON",
		"line 4: seq = 4, want 2",
		"line 5: missing kind",
	}
	joined := strings.Join(errs, "\n")
	for _, w := range wants {
		if !strings.Contains(joined, w) {
			t.Errorf("missing error %q in:\n%s", w, joined)
		}
	}
	if len(errs) != len(wants) {
		t.Errorf("got %d errors, want %d:\n%s", len(errs), len(wants), joined)
	}
}

func TestLintCausality(t *testing.T) {
	// Schema-only: the file is well-formed JSONL, so without -causality
	// it lints clean.
	if errs := lintFile("testdata/causality.jsonl", "trace", false); len(errs) != 0 {
		t.Fatalf("schema-only lint found errors: %v", errs)
	}
	errs := lintFile("testdata/causality.jsonl", "trace", true)
	joined := strings.Join(errs, "\n")
	wants := []string{
		"trace 2: 0 terminal spans, want 1",
		"trace 3: req-done without req-start",
		"trace 5: orphaned trace reference",
	}
	for _, w := range wants {
		if !strings.Contains(joined, w) {
			t.Errorf("missing error %q in:\n%s", w, joined)
		}
	}
	if len(errs) != len(wants) {
		t.Errorf("got %d errors, want %d:\n%s", len(errs), len(wants), joined)
	}
	// A req-lost without a req-start (trace 4) is legal; it must not be
	// reported.
	if strings.Contains(joined, "trace 4") {
		t.Errorf("legal req-lost without start reported: %s", joined)
	}
}

// TestLintDomainRules exercises the heap-domain ordering contracts on a
// hand-corrupted trace: a discard after a commit, a discard of a domain
// never switched to, a violation whose next span is not its crash, and a
// violation dangling at end of file. The legal shapes interleaved with
// them (switch→crash→discard, a dom=0 discard, violation→crash ordering
// handled via retry spans) must stay silent.
func TestLintDomainRules(t *testing.T) {
	// Without -causality the file is plain well-formed JSONL.
	if errs := lintFile("testdata/domains.jsonl", "trace", false); len(errs) != 0 {
		t.Fatalf("schema-only lint found errors: %v", errs)
	}
	errs := lintFile("testdata/domains.jsonl", "trace", true)
	joined := strings.Join(errs, "\n")
	wants := []string{
		`line 8: domain-discard after "commit", want crash`,
		"line 10: domain-discard of dom 2 with no prior domain-switch",
		`line 13: domain-violation (line 12) followed by "retry"`,
		"line 15: domain-violation with no following span",
	}
	for _, w := range wants {
		if !strings.Contains(joined, w) {
			t.Errorf("missing error %q in:\n%s", w, joined)
		}
	}
	if len(errs) != len(wants) {
		t.Errorf("got %d errors, want %d:\n%s", len(errs), len(wants), joined)
	}
	// The legal discards (line 5 after a crash, line 11's dom=0 empty
	// arena) must not be flagged.
	for _, legal := range []string{"line 5", "line 11"} {
		if strings.Contains(joined, legal+":") {
			t.Errorf("legal span reported: %s", joined)
		}
	}
}

// TestLintErrorCap keeps a thoroughly corrupt file's report readable.
func TestLintErrorCap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "storm.jsonl")
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&sb, "garbage line %d\n", i)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	errs := lintFile(path, "trace", false)
	if len(errs) != maxErrors+1 {
		t.Fatalf("got %d errors, want %d + summary", len(errs), maxErrors)
	}
	last := errs[len(errs)-1]
	if !strings.Contains(last, "more errors suppressed") {
		t.Errorf("no suppression summary: %q", last)
	}
}
