// Command obsvlint validates firebench's observability JSONL exports.
// CI runs it over -trace-out/-metrics-out/-profile files so a schema
// regression (unparseable line, missing field, non-monotonic cycles)
// fails the build instead of silently shipping broken telemetry.
//
// Usage:
//
//	obsvlint -schema trace|metrics|profile FILE...
//
// Every non-empty line must be a JSON object. Per schema:
//
//	trace:   "seq" (dense, increasing from 1), "cycles" (non-decreasing),
//	         "kind" (non-empty string)
//	metrics: "type" and "name" non-empty; histograms carry counts with
//	         len(buckets)+1 entries
//	profile: "type" one of func/libsite/total, exactly one terminal total
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	os.Exit(run())
}

func run() int {
	schema := flag.String("schema", "", "expected schema: trace, metrics or profile")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "obsvlint: no files given")
		return 2
	}
	bad := 0
	for _, path := range flag.Args() {
		if err := lintFile(path, *schema); err != nil {
			fmt.Fprintf(os.Stderr, "obsvlint: %s: %v\n", path, err)
			bad++
		} else {
			fmt.Printf("obsvlint: %s: ok\n", path)
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}

func lintFile(path, schema string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var (
		lineNo     int
		objects    int
		lastSeq    int64
		lastCycles int64
		totals     int
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			return fmt.Errorf("line %d: invalid JSON: %v", lineNo, err)
		}
		objects++
		switch schema {
		case "trace":
			seq, ok := num(obj["seq"])
			if !ok || seq != lastSeq+1 {
				return fmt.Errorf("line %d: seq = %v, want %d", lineNo, obj["seq"], lastSeq+1)
			}
			lastSeq = seq
			cyc, ok := num(obj["cycles"])
			if !ok || cyc < lastCycles {
				return fmt.Errorf("line %d: cycles = %v went backwards (last %d)", lineNo, obj["cycles"], lastCycles)
			}
			lastCycles = cyc
			if s, _ := obj["kind"].(string); s == "" {
				return fmt.Errorf("line %d: missing kind", lineNo)
			}
		case "metrics":
			typ, _ := obj["type"].(string)
			name, _ := obj["name"].(string)
			if typ == "" || name == "" {
				return fmt.Errorf("line %d: missing type/name", lineNo)
			}
			if typ == "histogram" {
				buckets, _ := obj["buckets"].([]any)
				counts, _ := obj["counts"].([]any)
				if len(counts) != len(buckets)+1 {
					return fmt.Errorf("line %d: %d counts for %d buckets", lineNo, len(counts), len(buckets))
				}
			}
		case "profile":
			switch typ, _ := obj["type"].(string); typ {
			case "func", "libsite":
			case "total":
				totals++
			default:
				return fmt.Errorf("line %d: unknown profile row type %q", lineNo, obj["type"])
			}
		case "":
			// Schema-less: any JSON object stream passes.
		default:
			return fmt.Errorf("unknown schema %q", schema)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if objects == 0 {
		return fmt.Errorf("no JSONL objects")
	}
	if schema == "profile" && totals != 1 {
		return fmt.Errorf("%d total rows, want exactly 1", totals)
	}
	return nil
}

// num coerces a decoded JSON number to int64.
func num(v any) (int64, bool) {
	f, ok := v.(float64)
	if !ok {
		return 0, false
	}
	return int64(f), true
}
