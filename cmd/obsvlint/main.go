// Command obsvlint validates firebench's observability JSONL exports.
// CI runs it over -trace-out/-metrics-out/-profile files so a schema
// regression (unparseable line, missing field, non-monotonic cycles)
// fails the build instead of silently shipping broken telemetry.
//
// Usage:
//
//	obsvlint -schema trace|metrics|profile [-causality] FILE...
//
// Every non-empty line must be a JSON object. Per schema:
//
//	trace:   "seq" (dense, increasing from 1), "cycles" (non-decreasing),
//	         "kind" (non-empty string)
//	metrics: "type" and "name" non-empty; histograms carry counts with
//	         len(buckets)+1 entries
//	profile: "type" one of func/libsite/total, exactly one terminal total
//
// Errors are reported per line (capped at 25 per file) and linting
// continues past each one, so a corrupt line cannot mask later damage;
// any error makes the exit status non-zero.
//
// -causality additionally validates the trace-ID causal chains of a
// trace file: every req-start reaches exactly one terminal (req-done or
// req-lost), a req-done never appears for a request that was never
// started, and no other span references a trace with no req-start. A
// req-lost without a req-start is legal — the request was delivered but
// the server died before reading it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// maxErrors caps the per-file error report so a thoroughly corrupt file
// stays readable; the suppressed remainder is summarized in one line.
const maxErrors = 25

func main() {
	os.Exit(run())
}

func run() int {
	schema := flag.String("schema", "", "expected schema: trace, metrics or profile")
	causality := flag.Bool("causality", false, "validate trace-ID causal chains (trace schema only)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "obsvlint: no files given")
		return 2
	}
	if *causality && *schema != "trace" {
		fmt.Fprintln(os.Stderr, "obsvlint: -causality requires -schema trace")
		return 2
	}
	bad := 0
	for _, path := range flag.Args() {
		errs := lintFile(path, *schema, *causality)
		if len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "obsvlint: %s: %s\n", path, e)
			}
			bad++
		} else {
			fmt.Printf("obsvlint: %s: ok\n", path)
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// causalState accumulates the trace-ID chains of one file.
type causalState struct {
	started   map[int64]int
	terminals map[int64]int
	lostOnly  map[int64]bool // terminal was req-lost (legal without a start)
	refs      map[int64]bool
}

func newCausalState() *causalState {
	return &causalState{
		started:   map[int64]int{},
		terminals: map[int64]int{},
		lostOnly:  map[int64]bool{},
		refs:      map[int64]bool{},
	}
}

// observe folds one span into the causal state.
func (c *causalState) observe(kind string, trace int64) {
	switch kind {
	case "req-start":
		c.started[trace]++
	case "req-done":
		c.terminals[trace]++
	case "req-lost":
		c.terminals[trace]++
		c.lostOnly[trace] = true
	default:
		if trace != 0 {
			c.refs[trace] = true
		}
	}
}

// errors reports every causal violation, in ascending trace order.
func (c *causalState) errors(report func(format string, args ...any)) {
	for _, tr := range sortedKeys(c.started) {
		if n := c.started[tr]; n != 1 {
			report("trace %d: %d req-start spans, want 1", tr, n)
		}
		if n := c.terminals[tr]; n != 1 {
			report("trace %d: %d terminal spans, want 1", tr, n)
		}
	}
	for _, tr := range sortedKeys(c.terminals) {
		if c.started[tr] == 0 && !c.lostOnly[tr] {
			report("trace %d: req-done without req-start", tr)
		}
	}
	refs := map[int64]int{}
	for tr := range c.refs {
		refs[tr] = 1
	}
	for _, tr := range sortedKeys(refs) {
		if c.started[tr] == 0 {
			report("trace %d: orphaned trace reference (no req-start)", tr)
		}
	}
}

// sortedKeys returns the map's keys in ascending order (deterministic
// error output).
func sortedKeys(m map[int64]int) []int64 {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// lintFile validates one file and returns every finding (nil = clean).
// It never stops at the first bad line: schema state resynchronizes past
// each error so the rest of the file is still checked.
func lintFile(path, schema string, causality bool) []string {
	f, err := os.Open(path)
	if err != nil {
		return []string{err.Error()}
	}
	defer f.Close()

	var (
		errs       []string
		suppressed int
	)
	report := func(format string, args ...any) {
		if len(errs) >= maxErrors {
			suppressed++
			return
		}
		errs = append(errs, fmt.Sprintf(format, args...))
	}

	var (
		lineNo     int
		objects    int
		lastSeq    int64
		lastCycles int64
		totals     int
	)
	causal := newCausalState()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			report("line %d: invalid JSON: %v", lineNo, err)
			continue
		}
		objects++
		switch schema {
		case "trace":
			seq, ok := num(obj["seq"])
			if !ok || seq != lastSeq+1 {
				report("line %d: seq = %v, want %d", lineNo, obj["seq"], lastSeq+1)
			}
			if ok {
				lastSeq = seq // resync so one gap doesn't cascade
			} else {
				lastSeq++
			}
			cyc, ok := num(obj["cycles"])
			if !ok || cyc < lastCycles {
				report("line %d: cycles = %v went backwards (last %d)", lineNo, obj["cycles"], lastCycles)
			}
			if ok && cyc > lastCycles {
				lastCycles = cyc
			}
			kind, _ := obj["kind"].(string)
			if kind == "" {
				report("line %d: missing kind", lineNo)
			}
			if causality {
				trace, _ := num(obj["trace"])
				causal.observe(kind, trace)
			}
		case "metrics":
			typ, _ := obj["type"].(string)
			name, _ := obj["name"].(string)
			if typ == "" || name == "" {
				report("line %d: missing type/name", lineNo)
			}
			if typ == "histogram" {
				buckets, _ := obj["buckets"].([]any)
				counts, _ := obj["counts"].([]any)
				if len(counts) != len(buckets)+1 {
					report("line %d: %d counts for %d buckets", lineNo, len(counts), len(buckets))
				}
			}
		case "profile":
			switch typ, _ := obj["type"].(string); typ {
			case "func", "libsite":
			case "total":
				totals++
			default:
				report("line %d: unknown profile row type %q", lineNo, obj["type"])
			}
		case "":
			// Schema-less: any JSON object stream passes.
		default:
			return []string{fmt.Sprintf("unknown schema %q", schema)}
		}
	}
	if err := sc.Err(); err != nil {
		report("%v", err)
	}
	if objects == 0 {
		report("no JSONL objects")
	}
	if schema == "profile" && totals != 1 {
		report("%d total rows, want exactly 1", totals)
	}
	if causality {
		causal.errors(report)
	}
	if suppressed > 0 {
		errs = append(errs, fmt.Sprintf("... %d more errors suppressed", suppressed))
	}
	return errs
}

// num coerces a decoded JSON number to int64.
func num(v any) (int64, bool) {
	f, ok := v.(float64)
	if !ok {
		return 0, false
	}
	return int64(f), true
}
