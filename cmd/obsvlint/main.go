// Command obsvlint validates firebench's observability JSONL exports.
// CI runs it over -trace-out/-metrics-out/-profile files so a schema
// regression (unparseable line, missing field, non-monotonic cycles)
// fails the build instead of silently shipping broken telemetry.
//
// Usage:
//
//	obsvlint -schema trace|metrics|profile [-causality] FILE...
//
// Every non-empty line must be a JSON object. Per schema:
//
//	trace:   "seq" (dense, increasing from 1), "cycles" (non-decreasing),
//	         "kind" (non-empty string)
//	metrics: "type" and "name" non-empty; histograms carry counts with
//	         len(buckets)+1 entries
//	profile: "type" one of func/libsite/total, exactly one terminal total
//
// Errors are reported per line (capped at 25 per file) and linting
// continues past each one, so a corrupt line cannot mask later damage;
// any error makes the exit status non-zero.
//
// -causality additionally validates the trace-ID causal chains of a
// trace file: every req-start reaches exactly one terminal (req-done or
// req-lost), a req-done never appears for a request that was never
// started, and no other span references a trace with no req-start. A
// req-lost without a req-start is legal — the request was delivered but
// the server died before reading it.
//
// -causality also enforces the heap-domain ordering contracts: a
// domain-discard's domain must have been switched to first (dom=0 is
// exempt — a crash before the request's first allocation discards an
// empty arena), a discard is legal on a thread only while its most
// recent transaction boundary is a crash (so a discard can never follow
// the same transaction's commit), and a domain-violation's very next
// span on that thread must be the crash, shed or unrecovered it becomes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// maxErrors caps the per-file error report so a thoroughly corrupt file
// stays readable; the suppressed remainder is summarized in one line.
const maxErrors = 25

func main() {
	os.Exit(run())
}

func run() int {
	schema := flag.String("schema", "", "expected schema: trace, metrics or profile")
	causality := flag.Bool("causality", false, "validate trace-ID causal chains and heap-domain ordering (trace schema only)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "obsvlint: no files given")
		return 2
	}
	if *causality && *schema != "trace" {
		fmt.Fprintln(os.Stderr, "obsvlint: -causality requires -schema trace")
		return 2
	}
	bad := 0
	for _, path := range flag.Args() {
		errs := lintFile(path, *schema, *causality)
		if len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "obsvlint: %s: %s\n", path, e)
			}
			bad++
		} else {
			fmt.Printf("obsvlint: %s: ok\n", path)
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// causalState accumulates the trace-ID chains of one file.
type causalState struct {
	started   map[int64]int
	terminals map[int64]int
	lostOnly  map[int64]bool // terminal was req-lost (legal without a start)
	refs      map[int64]bool
}

func newCausalState() *causalState {
	return &causalState{
		started:   map[int64]int{},
		terminals: map[int64]int{},
		lostOnly:  map[int64]bool{},
		refs:      map[int64]bool{},
	}
}

// observe folds one span into the causal state.
func (c *causalState) observe(kind string, trace int64) {
	switch kind {
	case "req-start":
		c.started[trace]++
	case "req-done":
		c.terminals[trace]++
	case "req-lost":
		c.terminals[trace]++
		c.lostOnly[trace] = true
	default:
		if trace != 0 {
			c.refs[trace] = true
		}
	}
}

// errors reports every causal violation, in ascending trace order.
func (c *causalState) errors(report func(format string, args ...any)) {
	for _, tr := range sortedKeys(c.started) {
		if n := c.started[tr]; n != 1 {
			report("trace %d: %d req-start spans, want 1", tr, n)
		}
		if n := c.terminals[tr]; n != 1 {
			report("trace %d: %d terminal spans, want 1", tr, n)
		}
	}
	for _, tr := range sortedKeys(c.terminals) {
		if c.started[tr] == 0 && !c.lostOnly[tr] {
			report("trace %d: req-done without req-start", tr)
		}
	}
	refs := map[int64]int{}
	for tr := range c.refs {
		refs[tr] = 1
	}
	for _, tr := range sortedKeys(refs) {
		if c.started[tr] == 0 {
			report("trace %d: orphaned trace reference (no req-start)", tr)
		}
	}
}

// domainState tracks the heap-domain ordering rules of one trace file.
// Unlike the trace-ID chains these are order-sensitive, so violations
// are reported at the offending line rather than at end of file.
type domainState struct {
	switched map[int64]bool   // domains a domain-switch has made current
	boundary map[int64]string // last transaction-boundary kind per thread
	pending  map[int64]int    // domain-violation line awaiting its crash, per thread
}

func newDomainState() *domainState {
	return &domainState{
		switched: map[int64]bool{},
		boundary: map[int64]string{},
		pending:  map[int64]int{},
	}
}

// observe folds one span into the domain state, reporting any ordering
// violation at the current line.
func (d *domainState) observe(lineNo int, thread int64, kind, detail string, report func(format string, args ...any)) {
	if from, ok := d.pending[thread]; ok {
		switch kind {
		case "crash", "shed", "unrecovered":
		default:
			report("line %d: domain-violation (line %d) followed by %q, want crash/shed/unrecovered",
				lineNo, from, kind)
		}
		delete(d.pending, thread)
	}
	switch kind {
	case "begin", "commit", "abort", "crash":
		d.boundary[thread] = kind
	case "domain-switch":
		if dom, ok := detailDom(detail); ok {
			d.switched[dom] = true
		}
	case "domain-discard":
		if b := d.boundary[thread]; b != "crash" {
			if b == "" {
				b = "no transaction boundary"
			}
			report("line %d: domain-discard after %q, want crash", lineNo, b)
		}
		if dom, ok := detailDom(detail); ok && dom != 0 && !d.switched[dom] {
			report("line %d: domain-discard of dom %d with no prior domain-switch", lineNo, dom)
		}
	case "domain-violation":
		d.pending[thread] = lineNo
	}
}

// finish reports violations still awaiting their crash at end of file.
func (d *domainState) finish(report func(format string, args ...any)) {
	lines := map[int64]int{}
	for _, ln := range d.pending {
		lines[int64(ln)] = 1
	}
	for _, ln := range sortedKeys(lines) {
		report("line %d: domain-violation with no following span", ln)
	}
}

// detailDom extracts the dom=N token of a domain span's detail field.
func detailDom(detail string) (int64, bool) {
	for _, field := range strings.Fields(detail) {
		if rest, ok := strings.CutPrefix(field, "dom="); ok {
			dom, err := strconv.ParseInt(rest, 10, 64)
			return dom, err == nil
		}
	}
	return 0, false
}

// sortedKeys returns the map's keys in ascending order (deterministic
// error output).
func sortedKeys(m map[int64]int) []int64 {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// lintFile validates one file and returns every finding (nil = clean).
// It never stops at the first bad line: schema state resynchronizes past
// each error so the rest of the file is still checked.
func lintFile(path, schema string, causality bool) []string {
	f, err := os.Open(path)
	if err != nil {
		return []string{err.Error()}
	}
	defer f.Close()

	var (
		errs       []string
		suppressed int
	)
	report := func(format string, args ...any) {
		if len(errs) >= maxErrors {
			suppressed++
			return
		}
		errs = append(errs, fmt.Sprintf(format, args...))
	}

	var (
		lineNo     int
		objects    int
		lastSeq    int64
		lastCycles int64
		totals     int
	)
	causal := newCausalState()
	domains := newDomainState()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			report("line %d: invalid JSON: %v", lineNo, err)
			continue
		}
		objects++
		switch schema {
		case "trace":
			seq, ok := num(obj["seq"])
			if !ok || seq != lastSeq+1 {
				report("line %d: seq = %v, want %d", lineNo, obj["seq"], lastSeq+1)
			}
			if ok {
				lastSeq = seq // resync so one gap doesn't cascade
			} else {
				lastSeq++
			}
			cyc, ok := num(obj["cycles"])
			if !ok || cyc < lastCycles {
				report("line %d: cycles = %v went backwards (last %d)", lineNo, obj["cycles"], lastCycles)
			}
			if ok && cyc > lastCycles {
				lastCycles = cyc
			}
			kind, _ := obj["kind"].(string)
			if kind == "" {
				report("line %d: missing kind", lineNo)
			}
			if causality {
				trace, _ := num(obj["trace"])
				causal.observe(kind, trace)
				thread, _ := num(obj["thread"])
				detail, _ := obj["detail"].(string)
				domains.observe(lineNo, thread, kind, detail, report)
			}
		case "metrics":
			typ, _ := obj["type"].(string)
			name, _ := obj["name"].(string)
			if typ == "" || name == "" {
				report("line %d: missing type/name", lineNo)
			}
			if typ == "histogram" {
				buckets, _ := obj["buckets"].([]any)
				counts, _ := obj["counts"].([]any)
				if len(counts) != len(buckets)+1 {
					report("line %d: %d counts for %d buckets", lineNo, len(counts), len(buckets))
				}
			}
		case "profile":
			switch typ, _ := obj["type"].(string); typ {
			case "func", "libsite":
			case "total":
				totals++
			default:
				report("line %d: unknown profile row type %q", lineNo, obj["type"])
			}
		case "":
			// Schema-less: any JSON object stream passes.
		default:
			return []string{fmt.Sprintf("unknown schema %q", schema)}
		}
	}
	if err := sc.Err(); err != nil {
		report("%v", err)
	}
	if objects == 0 {
		report("no JSONL objects")
	}
	if schema == "profile" && totals != 1 {
		report("%d total rows, want exactly 1", totals)
	}
	if causality {
		domains.finish(report)
		causal.errors(report)
	}
	if suppressed > 0 {
		errs = append(errs, fmt.Sprintf("... %d more errors suppressed", suppressed))
	}
	return errs
}

// num coerces a decoded JSON number to int64.
func num(v any) (int64, bool) {
	f, ok := v.(float64)
	if !ok {
		return 0, false
	}
	return int64(f), true
}
